"""Tests for the shared-nothing parallel simulator."""

import numpy as np
import pytest

from repro import Database, knn_query, range_query
from repro.parallel import (
    ParallelDatabase,
    hash_decluster,
    random_decluster,
    range_decluster,
    round_robin_decluster,
)

STRATEGIES = {
    "round_robin": round_robin_decluster,
    "hash": hash_decluster,
    "range": range_decluster,
}


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(61)
    centers = rng.random((4, 5))
    return np.clip(
        centers[rng.integers(0, 4, 600)] + rng.standard_normal((600, 5)) * 0.05,
        0,
        1,
    )


class TestDecluster:
    @pytest.mark.parametrize("strategy", STRATEGIES.values(), ids=STRATEGIES.keys())
    def test_partitions_cover_everything_disjointly(self, strategy):
        parts = strategy(101, 4)
        combined = sorted(int(i) for part in parts for i in part)
        assert combined == list(range(101))

    def test_random_decluster_covers(self):
        parts = random_decluster(50, 3, seed=1)
        combined = sorted(int(i) for part in parts for i in part)
        assert combined == list(range(50))

    @pytest.mark.parametrize(
        "strategy",
        [round_robin_decluster, random_decluster, hash_decluster],
        ids=["round_robin", "random", "hash"],
    )
    def test_balanced_sizes(self, strategy):
        parts = strategy(1000, 8)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 120  # hash may deviate slightly

    def test_range_decluster_contiguous(self):
        parts = range_decluster(100, 4)
        for part in parts:
            assert list(part) == list(range(part[0], part[-1] + 1))

    def test_rejects_more_servers_than_objects(self):
        with pytest.raises(ValueError):
            round_robin_decluster(2, 5)

    def test_rejects_zero_servers(self):
        with pytest.raises(ValueError):
            round_robin_decluster(10, 0)


class TestParallelCorrectness:
    @pytest.mark.parametrize("access", ["scan", "xtree"])
    @pytest.mark.parametrize("decluster", ["round_robin", "random", "hash", "range"])
    def test_knn_merge_matches_sequential(self, vectors, access, decluster):
        queries = [vectors[i] for i in range(0, 60, 6)]
        sequential = Database(vectors, access=access, block_size=2048)
        expected = sequential.multiple_similarity_query(queries, knn_query(7))
        parallel = ParallelDatabase(
            vectors, n_servers=4, access=access, decluster=decluster, block_size=2048
        )
        run = parallel.multiple_similarity_query(queries, knn_query(7))
        for exp, got in zip(expected, run.answers):
            assert sorted(a.distance for a in got) == pytest.approx(
                sorted(a.distance for a in exp)
            )

    def test_range_merge_matches_sequential(self, vectors):
        queries = [vectors[0], vectors[100]]
        sequential = Database(vectors, access="scan", block_size=2048)
        expected = sequential.multiple_similarity_query(queries, range_query(0.3))
        parallel = ParallelDatabase(vectors, n_servers=3, access="scan", block_size=2048)
        run = parallel.multiple_similarity_query(queries, range_query(0.3))
        for exp, got in zip(expected, run.answers):
            assert {a.index for a in got} == {a.index for a in exp}

    def test_seeding_does_not_change_answers(self, vectors):
        indices = list(range(0, 120, 10))
        queries = [vectors[i] for i in indices]
        parallel = ParallelDatabase(vectors, n_servers=4, access="xtree", block_size=2048)
        plain = parallel.multiple_similarity_query(queries, knn_query(5))
        parallel.cold()
        seeded = parallel.multiple_similarity_query(
            queries, knn_query(5), db_indices=indices, warm_start=True
        )
        for a, b in zip(plain.answers, seeded.answers):
            assert sorted(x.distance for x in a) == pytest.approx(
                sorted(x.distance for x in b)
            )

    def test_single_server_equals_sequential_cost(self, vectors):
        queries = [vectors[i] for i in range(10)]
        sequential = Database(vectors, access="scan", block_size=2048)
        with sequential.measure() as seq_run:
            sequential.multiple_similarity_query(queries, knn_query(5))
        parallel = ParallelDatabase(vectors, n_servers=1, access="scan", block_size=2048)
        run = parallel.multiple_similarity_query(queries, knn_query(5))
        assert run.elapsed_seconds == pytest.approx(seq_run.total_seconds, rel=1e-9)


class TestParallelCostModel:
    def test_elapsed_is_max_aggregate_is_sum(self, vectors):
        parallel = ParallelDatabase(vectors, n_servers=4, access="scan", block_size=2048)
        run = parallel.multiple_similarity_query(
            [vectors[0], vectors[1]], knn_query(3)
        )
        totals = [r.total_seconds for r in run.per_server]
        assert run.elapsed_seconds == pytest.approx(max(totals))
        assert run.aggregate_seconds == pytest.approx(sum(totals))
        assert len(run.per_server) == 4

    def test_elapsed_io_decreases_with_servers(self, vectors):
        queries = [vectors[i] for i in range(20)]
        costs = {}
        for s in (1, 4):
            parallel = ParallelDatabase(
                vectors, n_servers=s, access="scan", block_size=2048,
                buffer_fraction=0.0,
            )
            run = parallel.multiple_similarity_query(queries, knn_query(5))
            costs[s] = run.elapsed_io_seconds
        assert costs[4] < costs[1]

    def test_unknown_strategy(self, vectors):
        with pytest.raises(ValueError, match="unknown decluster"):
            ParallelDatabase(vectors, n_servers=2, decluster="zorder")

    def test_summary(self, vectors):
        parallel = ParallelDatabase(vectors, n_servers=3, access="scan")
        summary = parallel.summary()
        assert summary["servers"] == 3
        assert sum(summary["per_server"]) == len(vectors)

    def test_labels_survive_partitioning(self):
        from repro.workloads import make_gaussian_mixture

        dataset = make_gaussian_mixture(n=300, dimension=4, n_clusters=3, seed=2)
        parallel = ParallelDatabase(dataset, n_servers=3, access="scan")
        for server in parallel.servers:
            local_labels = server.database.dataset.labels
            expected = dataset.labels[server.global_indices]
            assert np.array_equal(local_labels, expected)


class TestProcessBackend:
    """The measured ``backend="process"`` agrees with the modelled one."""

    def test_answers_and_counters_match_model(self, vectors):
        queries = [vectors[i] for i in range(12)]
        indices = list(range(12))
        with ParallelDatabase(
            vectors, n_servers=2, access="scan", block_size=2048
        ) as parallel:
            modelled = parallel.multiple_similarity_query(
                queries, knn_query(5), db_indices=indices, backend="model"
            )
            measured = parallel.multiple_similarity_query(
                queries, knn_query(5), db_indices=indices, backend="process"
            )
        for a, b in zip(modelled.answers, measured.answers):
            assert [x.index for x in a] == [x.index for x in b]
            assert [x.distance for x in a] == pytest.approx(
                [x.distance for x in b]
            )
        for run_a, run_b in zip(modelled.per_server, measured.per_server):
            assert run_a.counters.as_dict() == run_b.counters.as_dict()

    def test_wall_clock_only_measured_for_process(self, vectors):
        queries = [vectors[i] for i in range(6)]
        with ParallelDatabase(
            vectors, n_servers=2, access="scan", block_size=2048
        ) as parallel:
            modelled = parallel.multiple_similarity_query(
                queries, knn_query(3), backend="model"
            )
            measured = parallel.multiple_similarity_query(
                queries, knn_query(3), backend="process"
            )
        assert modelled.wall_seconds is None
        with pytest.raises(ValueError, match="wall-clock"):
            modelled.elapsed_wall_seconds
        assert measured.wall_seconds is not None
        assert len(measured.wall_seconds) == 2
        assert measured.elapsed_wall_seconds > 0.0

    def test_range_queries_and_unknown_backend(self, vectors):
        queries = [vectors[0], vectors[1]]
        with ParallelDatabase(
            vectors, n_servers=2, access="scan", block_size=2048
        ) as parallel:
            modelled = parallel.multiple_similarity_query(
                queries, range_query(0.3), backend="model"
            )
            measured = parallel.multiple_similarity_query(
                queries, range_query(0.3), backend="process"
            )
            with pytest.raises(ValueError, match="unknown backend"):
                parallel.multiple_similarity_query(
                    queries, knn_query(2), backend="threads"
                )
        for a, b in zip(modelled.answers, measured.answers):
            assert sorted(x.index for x in a) == sorted(x.index for x in b)
