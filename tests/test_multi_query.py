"""Tests for the multiple similarity query (Def. 4, Fig. 4)."""

import numpy as np
import pytest

from repro import Database, bounded_knn_query, knn_query, range_query
from repro.core.multi_query import MultiQueryProcessor

from tests.helpers import brute_force_answers


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(51)
    centers = rng.random((5, 6))
    return np.clip(
        centers[rng.integers(0, 5, 700)] + rng.standard_normal((700, 6)) * 0.05,
        0,
        1,
    )


def make_db(vectors, access, engine="auto", **kwargs):
    return Database(vectors, access=access, block_size=2048, engine=engine, **kwargs)


QUERY_TYPES = [knn_query(5), range_query(0.25), bounded_knn_query(4, 0.3)]


class TestCorrectnessMatrix:
    """Every access method x engine x query type must match brute force."""

    @pytest.mark.parametrize("access", ["scan", "xtree", "mtree", "vafile"])
    @pytest.mark.parametrize("engine", ["vectorized", "reference"])
    @pytest.mark.parametrize("qtype", QUERY_TYPES, ids=lambda t: t.kind)
    def test_multi_matches_brute_force(self, vectors, access, engine, qtype):
        db = make_db(vectors, access, engine=engine)
        query_indices = [3, 77, 200, 431, 698]
        queries = [vectors[i] for i in query_indices]
        results = db.multiple_similarity_query(queries, qtype)
        for query, answers in zip(queries, results):
            expected = brute_force_answers(vectors, query, qtype)
            assert sorted(a.distance for a in answers) == pytest.approx(
                [d for _, d in expected]
            ), f"{access}/{engine}/{qtype.kind}"

    @pytest.mark.parametrize("access", ["scan", "xtree"])
    def test_mixed_query_types_in_one_batch(self, vectors, access):
        db = make_db(vectors, access)
        queries = [vectors[0], vectors[1], vectors[2]]
        qtypes = [knn_query(3), range_query(0.2), bounded_knn_query(2, 0.5)]
        results = db.multiple_similarity_query(queries, qtypes)
        for query, qtype, answers in zip(queries, qtypes, results):
            expected = brute_force_answers(vectors, query, qtype)
            assert sorted(a.distance for a in answers) == pytest.approx(
                [d for _, d in expected]
            )


class TestEngineEquivalence:
    """Design decision 1: both engines agree on answers AND counters."""

    @pytest.mark.parametrize("access", ["scan", "xtree"])
    @pytest.mark.parametrize("qtype", QUERY_TYPES, ids=lambda t: t.kind)
    def test_identical_counters(self, vectors, access, qtype):
        query_indices = list(range(0, 120, 10))
        runs = {}
        for engine in ("vectorized", "reference"):
            db = make_db(vectors, access, engine=engine)
            queries = [vectors[i] for i in query_indices]
            with db.measure() as handle:
                results = db.multiple_similarity_query(queries, qtype)
            runs[engine] = (handle.counters.as_dict(), results)
        counters_v, results_v = runs["vectorized"]
        counters_r, results_r = runs["reference"]
        assert counters_v == counters_r
        for a, b in zip(results_v, results_r):
            assert [x.index for x in a] == [x.index for x in b]


class TestDefinition4Semantics:
    def test_first_query_complete_after_one_call(self, vectors):
        db = make_db(vectors, "xtree")
        proc = db.processor()
        qtype = knn_query(5)
        queries = [vectors[i] for i in (0, 50, 100)]
        answers = proc.process(queries, [qtype] * 3)
        expected = brute_force_answers(vectors, queries[0], qtype)
        assert sorted(a.distance for a in answers) == pytest.approx(
            [d for _, d in expected]
        )

    def test_partial_answers_are_subsets(self, vectors):
        db = make_db(vectors, "xtree")
        proc = db.processor()
        qtype = range_query(0.3)
        queries = [vectors[i] for i in (0, 50, 100)]
        proc.process(queries, [qtype] * 3)
        for pending in proc.pending_queries[1:]:
            expected = {
                i for i, _ in brute_force_answers(vectors, pending.obj, qtype)
            }
            got = {a.index for a in pending.answers.materialize()}
            assert got <= expected  # A_i subseteq full answers

    def test_incremental_calls_complete_everything(self, vectors):
        db = make_db(vectors, "xtree")
        proc = db.processor()
        qtype = knn_query(4)
        queries = [vectors[i] for i in (0, 50, 100, 150)]
        results = []
        for i in range(len(queries)):
            results.append(proc.process(queries[i:], [qtype] * (len(queries) - i)))
        for query, answers in zip(queries, results):
            expected = brute_force_answers(vectors, query, qtype)
            assert sorted(a.distance for a in answers) == pytest.approx(
                [d for _, d in expected]
            )

    def test_buffered_query_not_reprocessed(self, vectors):
        # After a scan batch completes every query, re-asking one must
        # cost no further page reads or distance calculations.
        db = make_db(vectors, "scan", buffer_fraction=0.0)
        proc = db.processor()
        qtype = knn_query(5)
        queries = [vectors[i] for i in (0, 10, 20)]
        proc.process(queries, [qtype] * 3)
        with db.measure() as handle:
            proc.process(queries[1:], [qtype] * 2)
        assert handle.counters.page_reads == 0
        assert handle.counters.distance_calculations == 0

    def test_pages_never_reread_for_same_query(self, vectors):
        db = make_db(vectors, "scan", buffer_fraction=0.0)
        m = 10
        queries = [vectors[i] for i in range(m)]
        with db.measure() as handle:
            db.multiple_similarity_query(queries, knn_query(5))
        # Sec. 5.1 for the scan: I/O of the block equals one scan.
        assert handle.counters.page_reads == len(db.access_method.data_pages())

    def test_io_sharing_beats_single_queries_on_index(self, vectors):
        db = make_db(vectors, "xtree", buffer_fraction=0.0)
        query_indices = list(range(0, 300, 10))
        queries = [vectors[i] for i in query_indices]
        with db.measure() as single:
            for q in queries:
                db.similarity_query(q, knn_query(5))
        db.cold()
        with db.measure() as multi:
            db.multiple_similarity_query(queries, knn_query(5))
        assert multi.counters.page_reads <= single.counters.page_reads


class TestProcessorApi:
    def test_rejects_empty_batch(self, vectors):
        db = make_db(vectors, "scan")
        with pytest.raises(ValueError):
            db.processor().process([], [])

    def test_rejects_mismatched_types(self, vectors):
        db = make_db(vectors, "scan")
        with pytest.raises(ValueError):
            db.processor().process([vectors[0]], [knn_query(3), knn_query(3)])

    def test_rejects_mismatched_keys(self, vectors):
        db = make_db(vectors, "scan")
        with pytest.raises(ValueError):
            db.processor().process([vectors[0]], [knn_query(3)], keys=[1, 2])

    def test_same_key_different_type_rejected(self, vectors):
        db = make_db(vectors, "scan")
        proc = db.processor()
        proc.admit(vectors[0], knn_query(3), key="q")
        with pytest.raises(ValueError):
            proc.admit(vectors[0], knn_query(4), key="q")

    def test_retire_frees_slot_for_reuse(self, vectors):
        db = make_db(vectors, "scan")
        proc = db.processor()
        first = proc.admit(vectors[0], knn_query(3), key="a")
        slot = first.slot
        proc.retire("a")
        second = proc.admit(vectors[1], knn_query(3), key="b")
        assert second.slot == slot

    def test_clear_empties_buffer(self, vectors):
        db = make_db(vectors, "scan")
        proc = db.processor()
        proc.admit(vectors[0], knn_query(3))
        proc.clear()
        assert proc.pending_queries == []

    def test_duplicate_queries_share_pending(self, vectors):
        db = make_db(vectors, "scan")
        proc = db.processor()
        results = proc.query_all(
            [vectors[0], vectors[0]], [knn_query(3), knn_query(3)]
        )
        assert [a.index for a in results[0]] == [a.index for a in results[1]]

    def test_duplicate_queries_no_duplicate_answers(self, vectors):
        # Regression: a query object appearing twice in one batch must
        # not have pages processed twice for its shared pending, which
        # used to duplicate entries in the k-NN answer list.
        db = make_db(vectors, "scan")
        from tests.helpers import brute_force_answers

        batch = [vectors[5], vectors[9], vectors[5]]
        results = db.multiple_similarity_query(batch, knn_query(4))
        for query, answers in zip(batch, results):
            expected = brute_force_answers(vectors, query, knn_query(4))
            assert sorted(a.distance for a in answers) == pytest.approx(
                [d for _, d in expected]
            )
            assert len({a.index for a in answers}) == len(answers)

    def test_matrix_initialisation_cost(self, vectors):
        # Admitting m queries charges exactly m * (m-1) / 2 pair distances.
        db = make_db(vectors, "scan")
        m = 8
        with db.measure() as handle:
            db.multiple_similarity_query(
                [vectors[i] for i in range(m)], knn_query(3)
            )
        assert handle.counters.query_matrix_distance_calculations == m * (m - 1) // 2

    def test_vectorized_engine_requires_vector_data(self):
        from repro.data import GenericDataset

        db = Database(GenericDataset(["aa", "ab"]), metric="levenshtein", access="mtree")
        with pytest.raises(ValueError):
            MultiQueryProcessor(db, engine="vectorized")

    def test_avoidance_disabled_no_tries(self, vectors):
        db = make_db(vectors, "scan")
        queries = [vectors[i] for i in range(10)]
        with db.measure() as handle:
            db.multiple_similarity_query(queries, knn_query(5), use_avoidance=False)
        assert handle.counters.avoidance_tries == 0
        assert handle.counters.avoided_calculations == 0

    def test_avoidance_reduces_distance_calculations(self, vectors):
        db = make_db(vectors, "scan")
        queries = [vectors[i] for i in range(30)]
        with db.measure() as on:
            db.multiple_similarity_query(queries, knn_query(5))
        with db.measure() as off:
            db.multiple_similarity_query(queries, knn_query(5), use_avoidance=False)
        assert (
            on.counters.distance_calculations < off.counters.distance_calculations
        )


class TestSeedingAndWarmStart:
    @pytest.mark.parametrize("access", ["scan", "xtree"])
    def test_answers_unchanged(self, vectors, access):
        query_indices = list(range(0, 200, 10))
        queries = [vectors[i] for i in query_indices]
        db = make_db(vectors, access)
        plain = db.run_in_blocks(queries, knn_query(5), block_size=len(queries))
        db.cold()
        seeded = db.run_in_blocks(
            queries,
            knn_query(5),
            block_size=len(queries),
            db_indices=query_indices,
            warm_start=True,
        )
        for a, b in zip(plain, seeded):
            assert sorted(x.distance for x in a) == pytest.approx(
                sorted(x.distance for x in b)
            )

    def test_seeding_requires_at_least_k_others(self, vectors):
        db = make_db(vectors, "xtree")
        proc = db.processor(seed_from_queries=True)
        # Two queries, k=5: too few seed candidates, hint stays infinite.
        proc.process(
            [vectors[0], vectors[1]],
            [knn_query(5)] * 2,
            db_indices=[0, 1],
        )
        import math

        assert math.isinf(proc.pending_queries[1].radius_hint)

    def test_seeding_sets_finite_hint(self, vectors):
        db = make_db(vectors, "xtree")
        proc = db.processor(seed_from_queries=True)
        indices = list(range(10))
        proc.process(
            [vectors[i] for i in indices],
            [knn_query(3)] * 10,
            db_indices=indices,
        )
        import math

        hints = [p.radius_hint for p in proc.pending_queries]
        assert all(not math.isinf(h) for h in hints)

    def test_warm_start_ignored_for_scan(self, vectors):
        db = make_db(vectors, "scan")
        proc = db.processor(warm_start=True)
        assert not proc.warm_start
