"""Tests for the R*-tree building blocks: MBRs, splits, bulk loading."""

import numpy as np
import pytest

from repro.index.rstar import MBR, mindist_many, rstar_split, str_partition
from repro.index.rstar.str_load import kd_partition


class TestMBR:
    def test_from_points(self):
        points = np.array([[0.0, 1.0], [2.0, 0.5], [1.0, 3.0]])
        box = MBR.from_points(points)
        assert list(box.lo) == [0.0, 0.5]
        assert list(box.hi) == [2.0, 3.0]

    def test_from_points_rejects_empty(self):
        with pytest.raises(ValueError):
            MBR.from_points(np.empty((0, 2)))

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            MBR(np.array([1.0]), np.array([0.0]))

    def test_volume_and_margin(self):
        box = MBR(np.array([0.0, 0.0]), np.array([2.0, 3.0]))
        assert box.volume() == pytest.approx(6.0)
        assert box.margin() == pytest.approx(5.0)

    def test_union(self):
        a = MBR(np.array([0.0]), np.array([1.0]))
        b = MBR(np.array([2.0]), np.array([3.0]))
        u = a.union(b)
        assert (u.lo[0], u.hi[0]) == (0.0, 3.0)

    def test_union_point_and_enlargement(self):
        box = MBR(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        grown = box.union_point(np.array([2.0, 0.5]))
        assert grown.hi[0] == 2.0
        assert box.enlargement(np.array([2.0, 0.5])) == pytest.approx(1.0)
        assert box.enlargement(np.array([0.5, 0.5])) == 0.0

    def test_overlap_volume(self):
        a = MBR(np.array([0.0, 0.0]), np.array([2.0, 2.0]))
        b = MBR(np.array([1.0, 1.0]), np.array([3.0, 3.0]))
        assert a.overlap_volume(b) == pytest.approx(1.0)
        c = MBR(np.array([5.0, 5.0]), np.array([6.0, 6.0]))
        assert a.overlap_volume(c) == 0.0
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_contains_point_boundary(self):
        box = MBR(np.array([0.0]), np.array([1.0]))
        assert box.contains_point(np.array([1.0]))
        assert not box.contains_point(np.array([1.1]))

    def test_from_mbrs(self):
        boxes = [
            MBR(np.array([0.0]), np.array([1.0])),
            MBR(np.array([-1.0]), np.array([0.5])),
        ]
        merged = MBR.from_mbrs(boxes)
        assert (merged.lo[0], merged.hi[0]) == (-1.0, 1.0)

    def test_equality_and_copy(self):
        a = MBR(np.array([0.0]), np.array([1.0]))
        b = a.copy()
        assert a == b
        b.hi[0] = 2.0
        assert a != b

    def test_mindist_many_matches_definition(self):
        lo, hi = np.array([0.0, 0.0]), np.array([1.0, 1.0])
        queries = np.array([[0.5, 0.5], [2.0, 0.5], [2.0, 2.0]])
        result = mindist_many(lo, hi, queries)
        assert result[0] == 0.0
        assert result[1] == pytest.approx(1.0)
        assert result[2] == pytest.approx(np.sqrt(2.0))


class TestRStarSplit:
    def test_split_respects_min_fill(self):
        rng = np.random.default_rng(0)
        points = rng.random((20, 3))
        result = rstar_split(points, points, min_fill_fraction=0.4)
        assert len(result.left) >= 8
        assert len(result.right) >= 8
        assert len(result.left) + len(result.right) == 20

    def test_split_partitions_all_entries(self):
        rng = np.random.default_rng(1)
        points = rng.random((15, 4))
        result = rstar_split(points, points)
        combined = sorted(list(result.left) + list(result.right))
        assert combined == list(range(15))

    def test_separable_clusters_split_cleanly(self):
        left_cluster = np.random.default_rng(2).random((10, 2)) * 0.1
        right_cluster = left_cluster + 5.0
        points = np.vstack([left_cluster, right_cluster])
        result = rstar_split(points, points)
        groups = {frozenset(result.left.tolist()), frozenset(result.right.tolist())}
        assert groups == {frozenset(range(10)), frozenset(range(10, 20))}
        assert result.overlap == 0.0

    def test_rejects_single_entry(self):
        with pytest.raises(ValueError):
            rstar_split(np.zeros((1, 2)), np.zeros((1, 2)))

    def test_works_on_rectangles(self):
        los = np.array([[0.0, 0.0], [0.1, 0.1], [5.0, 5.0], [5.1, 5.2]])
        his = los + 0.5
        result = rstar_split(los, his)
        groups = {frozenset(result.left.tolist()), frozenset(result.right.tolist())}
        assert groups == {frozenset({0, 1}), frozenset({2, 3})}


class TestBulkLoaders:
    @pytest.mark.parametrize("loader", [str_partition, kd_partition])
    def test_covers_all_points_within_capacity(self, loader):
        rng = np.random.default_rng(3)
        points = rng.random((537, 8))
        tiles = loader(points, 64)
        seen = sorted(int(i) for tile in tiles for i in tile)
        assert seen == list(range(537))
        assert all(len(tile) <= 64 for tile in tiles)

    @pytest.mark.parametrize("loader", [str_partition, kd_partition])
    def test_single_tile_when_fits(self, loader):
        points = np.random.default_rng(4).random((10, 3))
        tiles = loader(points, 16)
        assert len(tiles) == 1

    @pytest.mark.parametrize("loader", [str_partition, kd_partition])
    def test_rejects_bad_capacity(self, loader):
        with pytest.raises(ValueError):
            loader(np.zeros((5, 2)), 0)

    def test_kd_tiles_are_tighter_in_high_dimensions(self):
        # The motivation for the kd loader: at d=20 classic STR degenerates
        # to slices along one axis, giving leaf MBRs with far larger
        # total volume-margin than recursive median splits.
        rng = np.random.default_rng(5)
        centers = rng.random((10, 20))
        points = centers[rng.integers(0, 10, 2000)] + rng.standard_normal(
            (2000, 20)
        ) * 0.02
        def total_margin(tiles):
            margin = 0.0
            for tile in tiles:
                sub = points[tile]
                margin += float(np.sum(sub.max(axis=0) - sub.min(axis=0)))
            return margin
        str_margin = total_margin(str_partition(points, 100))
        kd_margin = total_margin(kd_partition(points, 100))
        assert kd_margin < str_margin

    def test_kd_pages_mostly_full(self):
        points = np.random.default_rng(6).random((1000, 5))
        tiles = kd_partition(points, 100)
        # Page-aligned median splits keep utilisation high.
        assert len(tiles) <= 12
