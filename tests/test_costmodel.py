"""Tests for the counters and the cost model."""

import math

import pytest

from repro.costmodel import Counters, CostModel, distance_calculation_seconds
from repro.costmodel.model import COMPARISON_SECONDS


class TestCounters:
    def test_starts_at_zero(self):
        counters = Counters()
        assert counters.page_reads == 0
        assert counters.total_distance_calculations == 0
        assert all(v == 0 for v in counters.as_dict().values())

    def test_copy_is_independent(self):
        counters = Counters(distance_calculations=5)
        snapshot = counters.copy()
        counters.distance_calculations += 3
        assert snapshot.distance_calculations == 5
        assert counters.distance_calculations == 8

    def test_diff(self):
        counters = Counters(random_page_reads=2, avoidance_tries=10)
        before = counters.copy()
        counters.random_page_reads += 5
        counters.avoidance_tries += 1
        delta = counters.diff(before)
        assert delta.random_page_reads == 5
        assert delta.avoidance_tries == 1
        assert delta.sequential_page_reads == 0

    def test_add_accumulates(self):
        a = Counters(buffer_hits=1)
        b = Counters(buffer_hits=2, queries_completed=4)
        a.add(b)
        assert a.buffer_hits == 3
        assert a.queries_completed == 4

    def test_reset(self):
        counters = Counters(distance_calculations=9)
        counters.reset()
        assert counters.distance_calculations == 0

    def test_page_reads_sums_both_kinds(self):
        counters = Counters(sequential_page_reads=3, random_page_reads=4)
        assert counters.page_reads == 7

    def test_total_distance_calculations_includes_matrix(self):
        counters = Counters(
            distance_calculations=10, query_matrix_distance_calculations=5
        )
        assert counters.total_distance_calculations == 15


class TestCostModel:
    def test_paper_distance_constants(self):
        # Sec. 6.2: 4.3 us at 20-d and 12.7 us at 64-d.
        assert distance_calculation_seconds(20) == pytest.approx(4.3e-6)
        assert distance_calculation_seconds(64) == pytest.approx(12.7e-6)

    def test_distance_time_grows_with_dimension(self):
        assert distance_calculation_seconds(64) > distance_calculation_seconds(20)

    def test_paper_comparison_ratio(self):
        # Sec. 6.2: a 20-d distance is 52x a comparison, a 64-d one 155x.
        assert distance_calculation_seconds(20) / COMPARISON_SECONDS == pytest.approx(
            52.4, rel=0.01
        )
        assert distance_calculation_seconds(64) / COMPARISON_SECONDS == pytest.approx(
            154.9, rel=0.01
        )

    def test_io_cost_charges_reads_not_hits(self):
        model = CostModel(dimension=20)
        counters = Counters(
            sequential_page_reads=10, random_page_reads=2, buffer_hits=100
        )
        expected = 10 * model.sequential_block_seconds + 2 * model.random_block_seconds
        assert model.io_seconds(counters) == pytest.approx(expected)

    def test_random_reads_cost_more_than_sequential(self):
        model = CostModel(dimension=20)
        assert model.random_block_seconds > model.sequential_block_seconds

    def test_cpu_cost_formula(self):
        # Sec. 5.2: matrix init + tries * t_cmp + computed * t_dist.
        model = CostModel(dimension=20, mindist_seconds=0.0)
        counters = Counters(
            distance_calculations=100,
            query_matrix_distance_calculations=45,
            avoidance_tries=1000,
        )
        expected = 145 * model.distance_seconds + 1000 * model.comparison_seconds
        assert model.cpu_seconds(counters) == pytest.approx(expected)

    def test_breakdown_total(self):
        model = CostModel(dimension=8)
        counters = Counters(sequential_page_reads=1, distance_calculations=1)
        breakdown = model.breakdown(counters)
        assert breakdown.total_seconds == pytest.approx(
            breakdown.io_seconds + breakdown.cpu_seconds
        )

    def test_per_query_average(self):
        model = CostModel(dimension=8)
        counters = Counters(sequential_page_reads=10)
        breakdown = model.breakdown(counters).per_query(10)
        assert breakdown.io_seconds == pytest.approx(model.sequential_block_seconds)

    def test_per_query_rejects_nonpositive(self):
        model = CostModel(dimension=8)
        with pytest.raises(ValueError):
            model.breakdown(Counters()).per_query(0)

    def test_avoided_distance_cheaper_than_computed(self):
        # The whole point of Sec. 5.2: one avoided distance (a few tries)
        # must be cheaper than one computed distance.
        model = CostModel(dimension=20)
        assert 4 * model.comparison_seconds < model.distance_seconds
