"""Tests for the instrumented metric space and the storage substrate."""

import numpy as np
import pytest

from repro.costmodel import Counters
from repro.metric import MetricSpace
from repro.storage import (
    LRUBufferPool,
    Page,
    PageKind,
    SimulatedDisk,
    data_page_capacity,
    paginate,
)


class TestMetricSpace:
    def test_counts_single_distances(self):
        space = MetricSpace("euclidean")
        space.d([0, 0], [1, 1])
        space.d([0, 0], [2, 2])
        assert space.counters.distance_calculations == 2

    def test_counts_batch_distances(self):
        space = MetricSpace("euclidean")
        xs = np.random.default_rng(0).random((7, 3))
        space.d_many(xs, xs[0])
        assert space.counters.distance_calculations == 7

    def test_query_pair_counts_separately(self):
        space = MetricSpace("euclidean")
        space.d_query_pair([0, 0], [1, 1])
        assert space.counters.distance_calculations == 0
        assert space.counters.query_matrix_distance_calculations == 1

    def test_uncounted_does_not_count(self):
        space = MetricSpace("euclidean")
        space.uncounted([0, 0], [1, 1])
        assert space.counters.distance_calculations == 0

    def test_mbr_mindist_counts(self):
        space = MetricSpace("euclidean")
        space.mbr_mindist(np.zeros(2), np.ones(2), np.array([2.0, 2.0]))
        assert space.counters.mindist_evaluations == 1

    def test_shared_counters(self):
        counters = Counters()
        space = MetricSpace("euclidean", counters)
        space.d([0], [1])
        assert counters.distance_calculations == 1

    def test_empty_batch(self):
        space = MetricSpace("euclidean")
        result = space.d_many(np.empty((0, 3)), np.zeros(3))
        assert result.size == 0
        assert space.counters.distance_calculations == 0


class TestLRUBufferPool:
    def test_miss_then_hit(self):
        pool = LRUBufferPool(2)
        assert not pool.access(1)
        assert pool.access(1)

    def test_eviction_order(self):
        pool = LRUBufferPool(2)
        pool.access(1)
        pool.access(2)
        pool.access(3)  # evicts 1
        assert not pool.access(1)
        assert 2 not in pool  # 2 evicted when 1 re-admitted

    def test_access_refreshes_recency(self):
        pool = LRUBufferPool(2)
        pool.access(1)
        pool.access(2)
        pool.access(1)  # 1 becomes most recent
        pool.access(3)  # evicts 2
        assert 1 in pool
        assert 2 not in pool

    def test_multi_block_pages_use_capacity(self):
        pool = LRUBufferPool(3)
        pool.access(1, n_blocks=2)
        pool.access(2, n_blocks=2)  # must evict 1
        assert 1 not in pool
        assert pool.used_blocks == 2

    def test_oversized_page_not_admitted(self):
        pool = LRUBufferPool(1)
        assert not pool.access(1, n_blocks=5)
        assert 1 not in pool

    def test_zero_capacity_never_hits(self):
        pool = LRUBufferPool(0)
        assert not pool.access(1)
        assert not pool.access(1)

    def test_invalidate(self):
        pool = LRUBufferPool(2)
        pool.access(1)
        pool.invalidate(1)
        assert 1 not in pool
        assert pool.used_blocks == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUBufferPool(-1)


class TestSimulatedDisk:
    def _disk_with_pages(self, n_pages=5, buffer_blocks=0):
        counters = Counters()
        disk = SimulatedDisk(counters, buffer_blocks=buffer_blocks)
        for i in range(n_pages):
            disk.register(Page(page_id=i, indices=np.arange(3)))
        return disk, counters

    def test_sequential_scan_charges_sequential(self):
        disk, counters = self._disk_with_pages()
        disk.reset_head()
        for i in range(5):
            disk.read(i, sequential=True)
        assert counters.sequential_page_reads == 5
        assert counters.random_page_reads == 0

    def test_non_consecutive_charged_random_even_if_marked_sequential(self):
        disk, counters = self._disk_with_pages()
        disk.reset_head()
        disk.read(0, sequential=True)
        disk.read(3, sequential=True)  # gap -> random
        assert counters.sequential_page_reads == 1
        assert counters.random_page_reads == 1

    def test_random_reads(self):
        disk, counters = self._disk_with_pages()
        disk.read(2)
        disk.read(4)
        assert counters.random_page_reads == 2

    def test_buffer_hit_free(self):
        disk, counters = self._disk_with_pages(buffer_blocks=2)
        disk.read(1)
        disk.read(1)
        assert counters.random_page_reads == 1
        assert counters.buffer_hits == 1

    def test_supernode_charges_block_count(self):
        counters = Counters()
        disk = SimulatedDisk(counters)
        disk.register(Page(page_id=0, kind=PageKind.DIRECTORY, n_blocks=3))
        disk.read(0)
        assert counters.random_page_reads == 3

    def test_duplicate_page_id_rejected(self):
        disk, _ = self._disk_with_pages()
        with pytest.raises(ValueError):
            disk.register(Page(page_id=0))

    def test_unregistered_page_rejected(self):
        disk, _ = self._disk_with_pages()
        with pytest.raises(KeyError):
            disk.read(Page(page_id=99))

    def test_allocate_page_id_monotone(self):
        disk, _ = self._disk_with_pages(n_pages=3)
        assert disk.allocate_page_id() == 3

    def test_total_blocks(self):
        counters = Counters()
        disk = SimulatedDisk(counters)
        disk.register(Page(page_id=0))
        disk.register(Page(page_id=1, n_blocks=4))
        assert disk.total_blocks == 5

    def test_clear_buffer(self):
        disk, counters = self._disk_with_pages(buffer_blocks=3)
        disk.read(1)
        disk.clear_buffer()
        disk.read(1)
        assert counters.buffer_hits == 0
        assert counters.random_page_reads == 2


class TestLayout:
    def test_capacity_paper_block_size(self):
        # 32 KB block, 20-d float32 vectors + 8-byte object id.
        assert data_page_capacity(20) == 32768 // 88

    def test_capacity_too_small_block(self):
        with pytest.raises(ValueError):
            data_page_capacity(10_000, block_size=64)

    def test_paginate_covers_all_objects(self):
        pages = paginate(10, 3)
        seen = sorted(i for p in pages for i in p.indices)
        assert seen == list(range(10))
        assert [p.n_objects for p in pages] == [3, 3, 3, 1]

    def test_paginate_consecutive_addresses(self):
        pages = paginate(10, 4, first_page_id=7)
        assert [p.page_id for p in pages] == [7, 8, 9]

    def test_paginate_custom_order(self):
        order = np.array([4, 3, 2, 1, 0])
        pages = paginate(5, 2, order=order)
        assert list(pages[0].indices) == [4, 3]

    def test_paginate_bad_order_rejected(self):
        with pytest.raises(ValueError):
            paginate(5, 2, order=np.array([0, 1]))

    def test_page_validation(self):
        with pytest.raises(ValueError):
            Page(page_id=0, n_blocks=0)
