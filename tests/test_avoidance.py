"""Tests for the triangle-inequality avoidance (Lemmas 1 and 2)."""

import math

import numpy as np
import pytest

from repro.core.avoidance import (
    PairwiseDistanceCache,
    avoid_reference,
    avoid_vectorized,
)
from repro.costmodel import Counters
from repro.metric import MetricSpace


class TestLemmaSemantics:
    def test_lemma1_far_object_close_queries(self):
        # dist(O, Q1) = 5, dist(Q2, Q1) = 1, radius = 2:
        # 5 > 1 + 2 -> avoidable (Lemma 1).
        counters = Counters()
        known = np.array([[5.0]])
        avoided = avoid_vectorized(known, np.array([1.0]), 2.0, counters)
        assert avoided[0]
        assert counters.avoidance_tries == 1  # Lemma 1 fired first
        assert counters.avoided_calculations == 1

    def test_lemma2_close_object_far_queries(self):
        # dist(O, Q1) = 1, dist(Q2, Q1) = 5, radius = 2:
        # 5 > 1 + 2 -> avoidable (Lemma 2, second try).
        counters = Counters()
        known = np.array([[1.0]])
        avoided = avoid_vectorized(known, np.array([5.0]), 2.0, counters)
        assert avoided[0]
        assert counters.avoidance_tries == 2

    def test_not_avoidable_middle_distance(self):
        counters = Counters()
        known = np.array([[2.5]])
        avoided = avoid_vectorized(known, np.array([2.0]), 2.0, counters)
        assert not avoided[0]
        assert counters.avoidance_tries == 2

    def test_strictness_preserves_boundary_objects(self):
        # dist(O, Q1) = 3, dist(Q2, Q1) = 1, radius = 2: Lemma 1 with >=
        # would conclude dist >= radius, but an object at exactly the
        # range boundary belongs to the answer (Def. 2 uses <=), so the
        # strict test must NOT avoid it.
        counters = Counters()
        known = np.array([[3.0]])
        avoided = avoid_vectorized(known, np.array([1.0]), 2.0, counters)
        assert not avoided[0]

    def test_infinite_radius_never_tries(self):
        counters = Counters()
        known = np.array([[5.0, 1.0]])
        avoided = avoid_vectorized(known, np.array([1.0]), math.inf, counters)
        assert not avoided.any()
        assert counters.avoidance_tries == 0

    def test_nan_rows_skipped_without_try(self):
        counters = Counters()
        known = np.array([[np.nan], [5.0]])
        avoided = avoid_vectorized(known, np.array([1.0, 1.0]), 2.0, counters)
        assert avoided[0]
        assert counters.avoidance_tries == 1  # NaN pivot not charged

    def test_stops_at_first_success(self):
        counters = Counters()
        known = np.array([[5.0], [5.0], [5.0]])
        avoid_vectorized(known, np.array([1.0, 1.0, 1.0]), 2.0, counters)
        assert counters.avoidance_tries == 1

    def test_max_pivots_cap(self):
        counters = Counters()
        # Only the third pivot could avoid; cap at 2 -> not avoided.
        known = np.array([[2.0], [2.0], [50.0]])
        dqq = np.array([2.0, 2.0, 1.0])
        avoided = avoid_vectorized(known, dqq, 2.0, counters, max_pivots=2)
        assert not avoided[0]
        assert counters.avoidance_tries == 4
        counters2 = Counters()
        avoided = avoid_vectorized(known, dqq, 2.0, counters2, max_pivots=0)
        assert avoided[0]


class TestAvoidanceSoundness:
    def test_never_avoids_true_answers(self, rng):
        """Lemma application must never discard an object within radius."""
        space = MetricSpace("euclidean")
        for _ in range(50):
            points = rng.random((30, 4))
            queries = rng.random((4, 4))
            target = queries[-1]
            radius = float(rng.random() * 0.6)
            known = np.array(
                [space.distance.many(points, q) for q in queries[:-1]]
            )
            dqq = np.array([space.distance.one(target, q) for q in queries[:-1]])
            counters = Counters()
            avoided = avoid_vectorized(known, dqq, radius, counters)
            true = space.distance.many(points, target)
            # Every avoided object must be strictly outside the radius.
            assert np.all(true[avoided] > radius)

    def test_reference_matches_vectorized(self, rng):
        for _ in range(30):
            n_known, n_objects = int(rng.integers(1, 6)), int(rng.integers(1, 20))
            known = rng.random((n_known, n_objects)) * 4
            # Sprinkle NaNs (avoided-earlier entries).
            mask = rng.random((n_known, n_objects)) < 0.2
            known[mask] = np.nan
            dqq = rng.random(n_known) * 4
            radius = float(rng.random() * 2)
            counters_v = Counters()
            avoided_v = avoid_vectorized(known, dqq, radius, counters_v)
            counters_r = Counters()
            avoided_r = []
            for pos in range(n_objects):
                pairs = [
                    (known[j, pos], dqq[j])
                    for j in range(n_known)
                    if not math.isnan(known[j, pos])
                ]
                avoided_r.append(avoid_reference(pairs, radius, counters_r))
            assert list(avoided_v) == avoided_r
            assert counters_v.avoidance_tries == counters_r.avoidance_tries
            assert (
                counters_v.avoided_calculations == counters_r.avoided_calculations
            )


class TestPairwiseDistanceCache:
    def test_pair_computed_once(self):
        space = MetricSpace("euclidean")
        cache = PairwiseDistanceCache(space)
        a, b = np.array([0.0, 0.0]), np.array([1.0, 0.0])
        assert cache.get("a", a, "b", b) == pytest.approx(1.0)
        assert cache.get("b", b, "a", a) == pytest.approx(1.0)  # symmetric key
        assert space.counters.query_matrix_distance_calculations == 1

    def test_matrix_counts_all_pairs(self):
        space = MetricSpace("euclidean")
        cache = PairwiseDistanceCache(space)
        objs = [np.array([float(i), 0.0]) for i in range(4)]
        matrix = cache.matrix(list("abcd"), objs)
        assert space.counters.query_matrix_distance_calculations == 6
        assert matrix[0, 3] == pytest.approx(3.0)
        assert np.allclose(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)

    def test_drop_forgets_pairs(self):
        space = MetricSpace("euclidean")
        cache = PairwiseDistanceCache(space)
        objs = [np.array([float(i)]) for i in range(3)]
        cache.matrix(list("abc"), objs)
        cache.drop("a")
        assert len(cache) == 1  # only (b, c) remains
        cache.get("a", objs[0], "b", objs[1])
        assert space.counters.query_matrix_distance_calculations == 4
