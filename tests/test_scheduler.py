"""Tests for the dynamic-batching query scheduler (satellite 3).

Pins the scheduling semantics: deterministic logical-tick decisions,
FIFO fairness (the block driver is always the oldest ticket, a lone
ticket flushes within the deadline), answer identity with the plain
block path, and traced==untraced identity across every access method.
"""

import numpy as np
import pytest

from repro import Database, knn_query, range_query
from repro.core.planner import CostFit
from repro.obs import Observer
from repro.service import (
    ORDER_AFFINITY,
    ORDER_FIFO,
    QueryScheduler,
    knee_block_size,
    recommend_access,
)

ACCESS_METHODS = ["scan", "xtree", "rstar", "mtree", "vafile"]


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(31)
    centers = rng.random((5, 6))
    return np.clip(
        centers[rng.integers(0, 5, 600)] + rng.standard_normal((600, 6)) * 0.05,
        0,
        1,
    )


def make_db(vectors, access="xtree", **kwargs):
    return Database(vectors, access=access, block_size=2048, **kwargs)


def round_robin_trace(vectors, n_clients=4, per_client=4, k=5):
    trace = []
    position = 0
    for _ in range(per_client):
        for client in range(n_clients):
            trace.append((client, vectors[position * 7 % len(vectors)], knn_query(k)))
            position += 1
    return trace


def as_tuples(answers):
    return [(a.index, a.distance) for a in answers]


class TestKneePoint:
    def test_knee_is_smallest_block_within_tolerance(self):
        fit = CostFit(access="xtree", shared_seconds=1.0, marginal_seconds=0.1)
        # per_query(m) = 1/m + 0.1; asymptote at m=32 is ~0.13125.
        knee = knee_block_size(fit, max_block=32, tolerance=0.1)
        asymptote = fit.per_query(32)
        assert fit.per_query(knee) <= asymptote * 1.1
        assert knee > 1
        assert fit.per_query(knee - 1) > asymptote * 1.1

    def test_no_shared_cost_means_no_batching(self):
        fit = CostFit(access="scan", shared_seconds=0.0, marginal_seconds=0.2)
        assert knee_block_size(fit, max_block=32) == 1

    def test_knee_rejects_bad_max_block(self):
        fit = CostFit(access="scan", shared_seconds=1.0, marginal_seconds=0.1)
        with pytest.raises(ValueError):
            knee_block_size(fit, max_block=0)

    def test_recommend_access_picks_cheapest_at_block_size(self):
        fits = [
            CostFit(access="scan", shared_seconds=0.0, marginal_seconds=0.5),
            CostFit(access="xtree", shared_seconds=2.0, marginal_seconds=0.05),
        ]
        # At m=1 the scan is cheaper; at m=32 the tree amortises.
        assert recommend_access(fits, 1) == "scan"
        assert recommend_access(fits, 32) == "xtree"
        with pytest.raises(ValueError):
            recommend_access([], 4)


class TestFlushTriggers:
    def test_occupancy_target_flushes(self, vectors):
        scheduler = make_db(vectors).serve(block_target=3, max_wait=100)
        t1 = scheduler.submit(vectors[0], knn_query(3), client_id="a")
        t2 = scheduler.submit(vectors[5], knn_query(3), client_id="b")
        assert not t1.done and scheduler.queue_depth == 2
        t3 = scheduler.submit(vectors[9], knn_query(3), client_id="c")
        assert t1.done and t2.done and t3.done
        assert scheduler.queue_depth == 0
        assert t1.batch_size == 3

    def test_deadline_flushes_a_lone_ticket(self, vectors):
        """No client starves: a single ticket flushes within max_wait."""
        scheduler = make_db(vectors).serve(block_target=100, max_wait=3)
        ticket = scheduler.submit(vectors[0], knn_query(3))
        polls = 0
        while not ticket.done:
            scheduler.poll()
            polls += 1
            assert polls <= 3, "deadline did not fire within max_wait ticks"
        assert ticket.batch_size == 1
        assert ticket.completed_tick - ticket.submitted_tick <= 3

    def test_queue_pressure_flushes_before_admitting(self, vectors):
        scheduler = make_db(vectors).serve(
            block_target=100, max_block=4, max_wait=1000, max_queue=4
        )
        tickets = [
            scheduler.submit(vectors[i], knn_query(3)) for i in range(5)
        ]
        assert all(t.done for t in tickets[:4])
        assert not tickets[4].done
        assert scheduler.queue_depth == 1

    def test_drain_completes_everything(self, vectors):
        scheduler = make_db(vectors).serve(block_target=100, max_wait=1000)
        tickets = [
            scheduler.submit(vectors[i], knn_query(3)) for i in range(5)
        ]
        scheduler.drain()
        assert all(t.done for t in tickets)
        assert scheduler.queue_depth == 0

    def test_rejects_bad_parameters(self, vectors):
        db = make_db(vectors)
        with pytest.raises(ValueError):
            db.serve(order="random")
        with pytest.raises(ValueError):
            db.serve(block_target=0)
        with pytest.raises(ValueError):
            db.serve(max_block=0)


class TestDeterminism:
    @pytest.mark.parametrize("order", [ORDER_FIFO, ORDER_AFFINITY])
    def test_same_trace_same_schedule_and_answers(self, vectors, order):
        trace = round_robin_trace(vectors)

        def run():
            db = make_db(vectors)
            scheduler = db.serve(block_target=4, order=order)
            tickets = scheduler.serve(trace)
            return (
                [as_tuples(t.answers) for t in tickets],
                [(t.submitted_tick, t.completed_tick, t.batch_size) for t in tickets],
                db.counters.as_dict(),
            )

        assert run() == run()


class TestAnswerIdentity:
    @pytest.mark.parametrize("order", [ORDER_FIFO, ORDER_AFFINITY])
    def test_scheduler_answers_match_direct_queries(self, vectors, order):
        """Batching and block order never change any client's answers."""
        trace = round_robin_trace(vectors)
        db = make_db(vectors)
        tickets = db.serve(block_target=4, order=order).serve(trace)
        reference_db = make_db(vectors)
        for ticket, (_, obj, qtype) in zip(tickets, trace):
            want = reference_db.similarity_query(obj, qtype)
            assert as_tuples(ticket.answers) == as_tuples(want)

    @pytest.mark.parametrize("access", ACCESS_METHODS)
    def test_traced_identical_to_untraced(self, vectors, access):
        trace = round_robin_trace(vectors, n_clients=3, per_client=3)

        plain_db = make_db(vectors, access)
        plain = plain_db.serve(block_target=4).serve(trace)

        observer = Observer(trace=True)
        traced_db = make_db(vectors, access, observer=observer)
        traced = traced_db.serve(block_target=4).serve(trace)

        assert [as_tuples(t.answers) for t in plain] == [
            as_tuples(t.answers) for t in traced
        ]
        assert plain_db.counters.as_dict() == traced_db.counters.as_dict()
        names = {r["name"] for r in observer.tracer.records()}
        assert {"service.submit", "service.flush", "query.drive"} <= names


class TestFairness:
    def test_fifo_driver_is_always_the_oldest(self, vectors):
        """Under both orders batch[0] stays the oldest waiting ticket."""
        for order in (ORDER_FIFO, ORDER_AFFINITY):
            observer = Observer(trace=True)
            db = make_db(vectors, observer=observer)
            scheduler = db.serve(block_target=4, order=order)
            tickets = scheduler.serve(round_robin_trace(vectors))
            # Tickets complete in submission order (block = FIFO prefix).
            completed = [t.completed_tick for t in tickets]
            assert completed == sorted(completed)
            waits = [t.completed_tick - t.submitted_tick for t in tickets]
            assert max(waits) <= scheduler.block_target

    def test_affinity_keeps_driver_and_permutes_rest(self, vectors):
        scheduler = make_db(vectors).serve(
            block_target=100, max_wait=1000, order=ORDER_AFFINITY
        )
        tickets = [
            scheduler.submit(vectors[i * 50], knn_query(3), client_id=i)
            for i in range(6)
        ]
        batch = scheduler._order_batch(list(tickets))
        assert batch[0] is tickets[0]
        assert sorted(t.client_id for t in batch) == list(range(6))
        scheduler.drain()


class TestReplan:
    def test_replan_installs_knee_target_and_recommendation(self, vectors):
        observer = Observer(trace=True)
        db = make_db(vectors, "xtree", observer=observer)
        scheduler = db.serve(block_target=2, max_block=32)
        fits = [
            CostFit(access="xtree", shared_seconds=1.0, marginal_seconds=0.1),
            CostFit(access="scan", shared_seconds=0.0, marginal_seconds=5.0),
        ]
        scheduler.replan(fits)
        assert scheduler.block_target == knee_block_size(fits[0], 32)
        assert scheduler.recommended_access == "xtree"
        names = {r["name"] for r in observer.tracer.records()}
        assert "service.replan" in names

    def test_replan_without_own_access_uses_cheapest_fit(self, vectors):
        scheduler = make_db(vectors, "scan").serve(max_block=16)
        fits = [
            CostFit(access="xtree", shared_seconds=0.8, marginal_seconds=0.05),
            CostFit(access="mtree", shared_seconds=2.0, marginal_seconds=0.2),
        ]
        scheduler.replan(fits)
        assert scheduler.recommended_access == "xtree"

    def test_fits_at_construction(self, vectors):
        fits = [CostFit(access="xtree", shared_seconds=1.0, marginal_seconds=0.1)]
        scheduler = QueryScheduler(make_db(vectors, "xtree"), fits=fits)
        assert scheduler.block_target == knee_block_size(fits[0], 32)


class TestServiceMetrics:
    def test_serving_records_queue_and_latency_metrics(self, vectors):
        observer = Observer(trace=False)
        db = make_db(vectors, observer=observer)
        db.serve(block_target=4).serve(round_robin_trace(vectors))
        snapshot = observer.metrics.snapshot()
        hists = snapshot["histograms"]
        assert hists["service.batch_occupancy"]["count"] >= 4
        assert hists["service.batch_occupancy"]["max"] <= 32
        assert hists["service.client_latency.seconds"]["count"] == 16
        assert hists["service.wait.ticks"]["count"] == 16
        assert hists["service.time_to_first_answer.seconds"]["count"] >= 4
        assert snapshot["gauges"]["service.queue_depth"] == 0.0


def mixed_trace(vectors, n_clients=4, per_client=4):
    """Heterogeneous round-robin trace: kNN and diverse-radius range."""
    kinds = [knn_query(5), range_query(0.3), knn_query(3), range_query(0.5)]
    trace = []
    position = 0
    for _ in range(per_client):
        for client in range(n_clients):
            trace.append(
                (
                    client,
                    vectors[position * 7 % len(vectors)],
                    kinds[position % len(kinds)],
                )
            )
            position += 1
    return trace


class TestReplanHysteresis:
    """Satellite 1: no block-target oscillation after an anomaly halving."""

    FITS = [CostFit(access="xtree", shared_seconds=1.0, marginal_seconds=0.1)]
    FIRING = [{"rule": "latency_collapse", "replan": True}]

    def _scheduler(self, vectors):
        scheduler = make_db(vectors, "xtree").serve(block_target=8, max_block=32)
        scheduler.replan(self.FITS)
        return scheduler, scheduler.block_target

    def test_anomaly_halves_and_refit_does_not_reraise(self, vectors):
        scheduler, knee = self._scheduler(vectors)
        scheduler.replan(anomalies=self.FIRING)
        halved = scheduler.block_target
        assert halved == max(1, knee // 2)
        # A refit alone must NOT re-raise the target: no post-back-off
        # block has been audited yet (this was the oscillation bug).
        scheduler.replan(self.FITS)
        assert scheduler.block_target == halved

    def test_unrecovered_drift_keeps_backed_off_target(self, vectors):
        scheduler, _ = self._scheduler(vectors)
        scheduler.replan(anomalies=self.FIRING)
        halved = scheduler.block_target
        scheduler.audit.blocks_audited += 1  # a post-back-off block...
        scheduler.audit.drift_seconds = 5.0  # ...but drift still high
        scheduler.replan(self.FITS)
        assert scheduler.block_target == halved

    def test_recovered_drift_releases_the_backoff(self, vectors):
        scheduler, knee = self._scheduler(vectors)
        scheduler.replan(anomalies=self.FIRING)
        scheduler.audit.blocks_audited += 1
        scheduler.audit.drift_seconds = 1.0  # below DEFAULT_DRIFT_RECOVERY
        scheduler.replan(self.FITS)
        assert scheduler.block_target == knee

    def test_repeated_anomaly_and_refit_never_oscillates(self, vectors):
        scheduler, _ = self._scheduler(vectors)
        scheduler.replan(anomalies=self.FIRING)
        floor = scheduler.block_target
        scheduler.audit.drift_seconds = 5.0
        for _ in range(4):
            scheduler.replan(self.FITS)
            assert scheduler.block_target == floor
            scheduler.replan(anomalies=self.FIRING)
            floor = scheduler.block_target
        assert floor == 1  # monotone decay, never a re-raise in between


class TestHeterogeneousBatches:
    """Satellite 3: mixed query kinds through every partitioning mode."""

    def reference_answers(self, vectors, trace):
        db = make_db(vectors)
        return [
            as_tuples(db.similarity_query(obj, qtype))
            for (_, obj, qtype) in trace
        ]

    @pytest.mark.parametrize("order", [ORDER_FIFO, ORDER_AFFINITY])
    def test_v1_orders_answer_identity_and_fairness(self, vectors, order):
        trace = mixed_trace(vectors)
        reference = self.reference_answers(vectors, trace)
        scheduler = make_db(vectors).serve(block_target=4, order=order)
        tickets = scheduler.serve(trace)
        assert [as_tuples(t.answers) for t in tickets] == reference
        completions = {}
        for t in tickets:
            completions[t.client_id] = completions.get(t.client_id, 0) + 1
        assert set(completions.values()) == {4}

    def test_v2_partitioning_answer_identity_and_fairness(self, vectors):
        trace = mixed_trace(vectors)
        reference = self.reference_answers(vectors, trace)
        scheduler = make_db(vectors).serve(
            block_target=8, max_block=16, optimizer="v2"
        )
        tickets = scheduler.serve(trace)
        assert [as_tuples(t.answers) for t in tickets] == reference
        completions = {}
        for t in tickets:
            completions[t.client_id] = completions.get(t.client_id, 0) + 1
        assert set(completions.values()) == {4}

    def test_v2_with_planner_answer_identity(self, vectors):
        from repro.core.planner import QueryPlanner

        trace = mixed_trace(vectors)
        reference = self.reference_answers(vectors, trace)
        planner = QueryPlanner(
            vectors, candidates=("scan", "xtree"), probe_queries=4
        )
        scheduler = make_db(vectors).serve(
            block_target=8, max_block=16, optimizer="v2", planner=planner
        )
        tickets = scheduler.serve(trace)
        assert [as_tuples(t.answers) for t in tickets] == reference


class TestOptimizerV2Identity:
    """v2 forced to one partition is byte-identical to v1."""

    @pytest.mark.parametrize("access", ACCESS_METHODS)
    def test_single_partition_matches_v1_counters(self, vectors, access):
        trace = mixed_trace(vectors)
        results = {}
        for optimizer, share_bound in (("v1", None), ("v2", np.inf)):
            db = make_db(vectors, access)
            scheduler = db.serve(
                block_target=4,
                max_block=16,
                optimizer=optimizer,
                share_bound=share_bound,
            )
            tickets = scheduler.serve(trace)
            results[optimizer] = (
                [as_tuples(t.answers) for t in tickets],
                db.counters.as_dict(),
            )
        assert results["v1"][0] == results["v2"][0]
        assert results["v1"][1] == results["v2"][1]

    def test_v2_rejects_unknown_optimizer(self, vectors):
        with pytest.raises(ValueError):
            make_db(vectors).serve(optimizer="v3")

    def test_v2_emits_partition_metrics_and_plan_events(self, vectors):
        observer = Observer(trace=True)
        db = make_db(vectors, observer=observer)
        scheduler = db.serve(block_target=8, max_block=16, optimizer="v2")
        scheduler.serve(mixed_trace(vectors))
        snapshot = observer.metrics.snapshot()
        assert snapshot["histograms"]["planner.partition.count"]["count"] >= 1
        assert snapshot["histograms"]["planner.partition.size"]["count"] >= 1
        assert "planner.partition.sharing_factor" in snapshot["gauges"]
        plans = [
            r for r in observer.tracer.records() if r["name"] == "planner.plan"
        ]
        assert plans
        for record in plans:
            attrs = record["attrs"]
            assert attrs["queries"]
            assert attrs["size"] == len(attrs["queries"].split("|"))
