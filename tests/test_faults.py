"""Tests for the fault-injection and recovery subsystem.

The load-bearing invariant (docs/robustness.md, chaos CI): every fault
a plan injects that the stack can recover from -- page-read retries,
crashed or straggling servers re-dispatched to survivors -- must leave
the merged answers AND the paper's deterministic cost counters
byte-identical to the fault-free run.  Unrecoverable faults degrade
gracefully: partial answers plus an explicit completeness bound.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro import Database, knn_query
from repro.faults import (
    KIND_LATENCY,
    KIND_PAGE_READ_ERROR,
    KIND_SERVER_CRASH,
    FaultInjector,
    FaultPlan,
    PageReadError,
    RetryPolicy,
    ServerCrash,
    SiteSpec,
)
from repro.parallel import ParallelDatabase
from repro.service import DegradedAnswerEvent

# 800 x 6 float64 at 2 KiB blocks spreads the dataset over ~19 data
# pages, enough read operations for probability/at_ops specs to fire.
BLOCK_SIZE = 2048
ACCESS_METHODS = ["scan", "xtree", "rstar", "mtree", "vafile"]


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(17)
    centers = rng.random((5, 6))
    return np.clip(
        centers[rng.integers(0, 5, 800)] + rng.standard_normal((800, 6)) * 0.04,
        0,
        1,
    )


@pytest.fixture(scope="module")
def queries(vectors):
    # Lists of vectors, not a 2-D array: query batches are sequences.
    return [vectors[i] for i in (3, 101, 256, 430, 599, 777)]


def crash_plan(site="server:0", at_ops=(2,), max_faults=1, retries=3):
    return FaultPlan(
        seed=5,
        sites=(
            SiteSpec(
                pattern=site,
                kinds=(KIND_SERVER_CRASH,),
                at_ops=tuple(at_ops),
                max_faults=max_faults,
            ),
        ),
        retry=RetryPolicy(max_retries=retries),
    )


# ----------------------------------------------------------------------
# Plans, specs and policies
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_round_trips_through_dict(self):
        plan = FaultPlan(
            seed=9,
            sites=(
                SiteSpec(pattern="server:*", probability=0.25, latency_ticks=3),
                SiteSpec(
                    pattern="server:1",
                    kinds=(KIND_SERVER_CRASH,),
                    at_ops=(4, 9),
                    max_faults=2,
                ),
            ),
            retry=RetryPolicy(max_retries=5, deadline_ticks=12),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_round_trips_through_file(self, tmp_path):
        plan = FaultPlan(
            seed=3, sites=(SiteSpec(pattern="server:0", probability=0.5),)
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.from_file(path) == plan

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            SiteSpec(pattern="server:*", kinds=("meteor_strike",))

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            SiteSpec(pattern="server:*", probability=1.5)

    def test_draw_sequence_is_deterministic(self):
        plan = FaultPlan(
            seed=21,
            sites=(SiteSpec(pattern="server:*", probability=0.4),),
        )
        first = [plan_context_draws(plan, "server:0", 50)]
        second = [plan_context_draws(plan, "server:0", 50)]
        assert first == second

    def test_sites_draw_independent_streams(self):
        plan = FaultPlan(
            seed=21,
            sites=(SiteSpec(pattern="server:*", probability=0.4),),
        )
        a = plan_context_draws(plan, "server:0", 80)
        b = plan_context_draws(plan, "server:1", 80)
        assert a != b  # distinct per-site RNG streams

    def test_at_ops_fire_exactly_there(self):
        plan = FaultPlan(
            seed=0,
            sites=(SiteSpec(pattern="s", at_ops=(0, 3), max_faults=None),),
        )
        decisions = plan_context_draws(plan, "s", 6)
        fired = [i for i, d in enumerate(decisions) if d is not None]
        assert fired == [0, 3]

    def test_max_faults_caps_the_budget(self):
        plan = FaultPlan(
            seed=0,
            sites=(SiteSpec(pattern="s", probability=1.0, max_faults=2),),
        )
        decisions = plan_context_draws(plan, "s", 10)
        assert sum(d is not None for d in decisions) == 2


def plan_context_draws(plan, site, n):
    context = FaultInjector(plan).context(site)
    return [context.draw() for _ in range(n)]


class TestRetryPolicy:
    def test_allows_bounded_attempts(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.allows(1) and policy.allows(2)
        assert not policy.allows(3)

    def test_backoff_is_exponential_in_ticks(self):
        policy = RetryPolicy(backoff_ticks=1, backoff_factor=2.0)
        assert [policy.backoff(a) for a in (1, 2, 3, 4)] == [1, 2, 4, 8]

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            RetryPolicy.from_dict({"max_retries": 1, "bogus": 2})


# ----------------------------------------------------------------------
# Recoverable faults: answers and counters byte-identical
# ----------------------------------------------------------------------


class TestRecoverableReads:
    def test_retried_page_errors_change_nothing(self, vectors, queries):
        plan = FaultPlan(
            seed=2,
            sites=(SiteSpec(pattern="server:*", probability=0.2),),
            retry=RetryPolicy(max_retries=5),
        )
        clean = Database(vectors, access="scan", block_size=BLOCK_SIZE)
        clean_answers = clean.session().ask(queries, knn_query(5))

        faulty = Database(
            vectors, access="scan", block_size=BLOCK_SIZE, fault_plan=plan
        )
        answers = faulty.session().ask(queries, knn_query(5))

        assert answers == clean_answers
        assert asdict(faulty.counters) == asdict(clean.counters)
        summary = faulty.fault_injector.summary()
        assert summary["injected"].get(KIND_PAGE_READ_ERROR, 0) > 0
        assert summary["retries"] > 0

    def test_exhausted_retries_raise_page_read_error(self, vectors, queries):
        plan = FaultPlan(
            seed=2,
            sites=(SiteSpec(pattern="server:*", probability=1.0),),
            retry=RetryPolicy(max_retries=2),
        )
        database = Database(
            vectors, access="scan", block_size=BLOCK_SIZE, fault_plan=plan
        )
        with pytest.raises(PageReadError) as excinfo:
            database.session().ask(queries, knn_query(5))
        assert excinfo.value.attempts == 3  # initial try + 2 retries

    def test_identical_fault_runs_are_identical(self, vectors, queries):
        plan = FaultPlan(
            seed=8,
            sites=(SiteSpec(pattern="server:*", probability=0.3),),
            retry=RetryPolicy(max_retries=6),
        )
        runs = []
        for _ in range(2):
            database = Database(
                vectors, access="scan", block_size=BLOCK_SIZE, fault_plan=plan
            )
            answers = database.session().ask(queries, knn_query(5))
            runs.append((answers, database.fault_injector.summary()))
        assert runs[0] == runs[1]


class TestZeroOverhead:
    def test_empty_plan_is_free(self, vectors, queries):
        clean = Database(vectors, access="xtree", block_size=BLOCK_SIZE)
        clean_answers = clean.session().ask(queries, knn_query(5))

        gated = Database(
            vectors,
            access="xtree",
            block_size=BLOCK_SIZE,
            fault_plan=FaultPlan(seed=0, sites=()),
        )
        answers = gated.session().ask(queries, knn_query(5))

        assert answers == clean_answers
        assert asdict(gated.counters) == asdict(clean.counters)
        summary = gated.fault_injector.summary()
        assert summary["injected_total"] == 0
        assert summary["retries"] == 0
        assert summary["ticks"] == 0

    def test_no_plan_means_no_gate(self, vectors):
        database = Database(vectors, access="scan", block_size=BLOCK_SIZE)
        assert database.fault_injector is None
        assert database.disk.faults is None


# ----------------------------------------------------------------------
# Parallel recovery: crashes and stragglers re-dispatched exactly
# ----------------------------------------------------------------------


class TestParallelRecovery:
    @pytest.mark.parametrize("access", ACCESS_METHODS)
    def test_crash_recovery_is_exact(self, vectors, queries, access):
        plan = crash_plan(site="server:1", at_ops=(3, 7), max_faults=2)
        clean = ParallelDatabase(
            vectors, n_servers=3, access=access, block_size=BLOCK_SIZE
        )
        clean_run = clean.multiple_similarity_query(queries, knn_query(5))

        faulty = ParallelDatabase(
            vectors,
            n_servers=3,
            access=access,
            block_size=BLOCK_SIZE,
            fault_plan=plan,
        )
        run = faulty.multiple_similarity_query(queries, knn_query(5))

        assert run.answers == clean_run.answers
        for mine, theirs in zip(run.per_server, clean_run.per_server):
            assert asdict(mine.counters) == asdict(theirs.counters)
        summary = faulty.fault_injector.summary()
        assert summary["injected"].get(KIND_SERVER_CRASH, 0) >= 1
        assert summary["redispatches"] >= 1

    def test_straggler_timeout_is_redispatched_exactly(self, vectors, queries):
        plan = FaultPlan(
            seed=4,
            sites=(
                SiteSpec(
                    pattern="server:2",
                    kinds=(KIND_LATENCY,),
                    probability=0.5,
                    latency_ticks=4,
                    max_faults=6,
                ),
            ),
            retry=RetryPolicy(max_retries=4, deadline_ticks=6),
        )
        clean = ParallelDatabase(
            vectors, n_servers=3, access="xtree", block_size=BLOCK_SIZE
        )
        clean_run = clean.multiple_similarity_query(queries, knn_query(5))

        faulty = ParallelDatabase(
            vectors,
            n_servers=3,
            access="xtree",
            block_size=BLOCK_SIZE,
            fault_plan=plan,
        )
        run = faulty.multiple_similarity_query(queries, knn_query(5))

        assert run.answers == clean_run.answers
        for mine, theirs in zip(run.per_server, clean_run.per_server):
            assert asdict(mine.counters) == asdict(theirs.counters)
        summary = faulty.fault_injector.summary()
        assert summary["redispatches"] >= 1
        assert summary["ticks"] > 0

    def test_process_backend_matches_model(self, vectors, queries):
        plan = crash_plan(site="server:1", at_ops=(3, 7), max_faults=2)
        model = ParallelDatabase(
            vectors,
            n_servers=3,
            access="xtree",
            block_size=BLOCK_SIZE,
            fault_plan=plan,
        )
        model_run = model.multiple_similarity_query(queries, knn_query(5))
        model_summary = model.fault_injector.summary()

        proc = ParallelDatabase(
            vectors,
            n_servers=3,
            access="xtree",
            block_size=BLOCK_SIZE,
            fault_plan=plan,
        )
        try:
            proc_run = proc.multiple_similarity_query(
                queries, knn_query(5), backend="process"
            )
        finally:
            proc.close()

        assert proc_run.answers == model_run.answers
        for mine, theirs in zip(proc_run.per_server, model_run.per_server):
            assert asdict(mine.counters) == asdict(theirs.counters)
        proc_summary = proc.fault_injector.summary()
        assert proc_summary["injected"] == model_summary["injected"]
        assert proc_summary["redispatches"] == model_summary["redispatches"]

    def test_unrecoverable_crash_propagates(self, vectors, queries):
        plan = crash_plan(
            site="server:*",
            at_ops=tuple(range(20)),
            max_faults=None,
            retries=2,
        )
        database = ParallelDatabase(
            vectors,
            n_servers=3,
            access="scan",
            block_size=BLOCK_SIZE,
            fault_plan=plan,
        )
        with pytest.raises(ServerCrash):
            database.multiple_similarity_query(queries, knn_query(5))


# ----------------------------------------------------------------------
# Graceful degradation: partial answers with a completeness bound
# ----------------------------------------------------------------------


class TestDegradedStreaming:
    def test_stream_degrades_instead_of_raising(self, vectors, queries):
        database = Database(
            vectors,
            access="xtree",
            block_size=BLOCK_SIZE,
            fault_plan=crash_plan(at_ops=(2,)),
        )
        session = database.session()
        events = list(session.stream(queries, knn_query(5)))
        degraded = [e for e in events if isinstance(e, DegradedAnswerEvent)]
        assert len(degraded) == len(queries)
        for event in degraded:
            assert 0.0 <= event.completeness < 1.0
            assert event.pages_processed < event.total_pages
            assert "ServerCrash" in event.reason

    def test_degraded_events_carry_buffer_contents(self, vectors, queries):
        database = Database(
            vectors,
            access="xtree",
            block_size=BLOCK_SIZE,
            fault_plan=crash_plan(at_ops=(2,)),
        )
        events = list(database.session().stream(queries, knn_query(5)))
        degraded = [e for e in events if isinstance(e, DegradedAnswerEvent)]
        assert degraded and any(e.answers for e in degraded)

    def test_ask_still_raises(self, vectors, queries):
        database = Database(
            vectors,
            access="xtree",
            block_size=BLOCK_SIZE,
            fault_plan=crash_plan(at_ops=(2,)),
        )
        with pytest.raises(ServerCrash):
            database.session().ask(queries, knn_query(5))


class TestSchedulerDegradation:
    def test_tickets_complete_with_completeness_bounds(self, vectors, queries):
        database = Database(
            vectors,
            access="xtree",
            block_size=BLOCK_SIZE,
            fault_plan=crash_plan(at_ops=(2,)),
        )
        scheduler = database.serve(block_target=3, max_block=6, max_wait=2)
        tickets = [
            scheduler.submit(obj, knn_query(5), client_id=i)
            for i, obj in enumerate(queries)
        ]
        scheduler.drain()
        assert all(ticket.done for ticket in tickets)
        degraded = [ticket for ticket in tickets if ticket.degraded]
        assert degraded
        for ticket in degraded:
            assert ticket.completeness is not None
            assert 0.0 <= ticket.completeness < 1.0
        assert scheduler.degraded_sessions >= 1

    def test_faults_bump_degraded_sessions_gauge(self, vectors, queries):
        from repro.obs import Observer

        observer = Observer(trace=False)
        database = Database(
            vectors,
            access="xtree",
            block_size=BLOCK_SIZE,
            observer=observer,
            fault_plan=crash_plan(at_ops=(2,)),
        )
        scheduler = database.serve(block_target=3, max_block=6, max_wait=2)
        for i, obj in enumerate(queries):
            scheduler.submit(obj, knn_query(5), client_id=i)
        scheduler.drain()
        snapshot = observer.metrics.snapshot()
        assert snapshot["gauges"]["service.degraded_sessions"] >= 1
        assert snapshot["counters"]["fault.injected"] >= 1
