"""Tests for the benchmark baseline store and regression harness."""

import json

import pytest

from repro.obs import regression
from repro.obs.regression import (
    SCHEMA_VERSION,
    compare,
    entries_from_bench_file,
    load_store,
    make_entry,
    render_comparison,
    run_quick_suite,
    save_store,
)


def _entry(seconds, **counters):
    return make_entry(seconds, counters or None)


class TestBaselineStore:
    def test_round_trip_preserves_entries(self, tmp_path):
        path = str(tmp_path / "store.json")
        entries = {
            "quick/xtree/knn": _entry(0.02, page_reads=145, queries_completed=24),
            "quick/scan/knn": _entry(0.10, page_reads=216),
        }
        save_store(path, entries)
        assert load_store(path) == entries

    def test_store_is_schema_versioned_and_sorted(self, tmp_path):
        path = str(tmp_path / "store.json")
        save_store(path, {"b/x": _entry(1.0), "a/y": _entry(2.0)})
        raw = json.load(open(path))
        assert raw["schema"] == SCHEMA_VERSION
        assert list(raw["entries"]) == ["a/y", "b/x"]

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro-bench/999", "entries": {}}))
        with pytest.raises(ValueError, match="repro-bench/999"):
            load_store(str(path))


class TestCompare:
    def test_identical_runs_are_ok(self):
        entries = {"k": _entry(1.0, page_reads=10)}
        report = compare(entries, entries)
        assert report.ok
        assert [r.status for r in report.rows] == ["ok"]

    def test_two_x_slowdown_is_named_as_regression(self):
        baseline = {
            "quick/xtree/knn": _entry(1.0, page_reads=100),
            "quick/scan/knn": _entry(1.0, page_reads=200),
        }
        current = {
            "quick/xtree/knn": _entry(2.1, page_reads=100),
            "quick/scan/knn": _entry(1.1, page_reads=200),
        }
        report = compare(current, baseline, seconds_threshold=0.5)
        assert not report.ok
        assert [r.key for r in report.regressions] == ["quick/xtree/knn"]
        text = render_comparison(report)
        assert "REGRESSION: quick/xtree/knn" in text
        assert "2.10x" in text

    def test_counter_increase_is_a_regression_even_when_fast(self):
        baseline = {"k": _entry(1.0, distance_calculations=1000)}
        current = {"k": _entry(0.5, distance_calculations=1500)}
        report = compare(current, baseline, seconds_threshold=0.5)
        assert [r.key for r in report.regressions] == ["k"]
        assert report.rows[0].counter_regressions == [
            ("distance_calculations", 1000, 1500)
        ]
        # ... and tolerated once inside the counter threshold.
        assert compare(
            current, baseline, seconds_threshold=0.5, counter_threshold=0.6
        ).ok

    def test_new_and_missing_keys_do_not_fail(self):
        report = compare({"new/k": _entry(1.0)}, {"old/k": _entry(1.0)})
        assert report.ok
        assert {r.key: r.status for r in report.rows} == {
            "new/k": "new",
            "old/k": "missing",
        }

    def test_speedup_is_reported_as_improved(self):
        report = compare({"k": _entry(0.4)}, {"k": _entry(1.0)})
        assert report.ok
        assert report.rows[0].status == "improved"

    def test_report_json_shape(self):
        report = compare({"k": _entry(2.1)}, {"k": _entry(1.0)})
        payload = report.to_json()
        assert payload["ok"] is False
        assert payload["regressions"] == ["k"]
        assert payload["rows"][0]["seconds_ratio"] == pytest.approx(2.1)


class TestBenchFileConverters:
    def test_engine_kernels_file_converts(self):
        entries = entries_from_bench_file("BENCH_engine_kernels.json")
        assert entries
        key = next(iter(entries))
        assert key.startswith("engine_kernels/")
        assert key.rsplit("/", 1)[1] in ("reference", "vectorized", "batched")
        assert all(e["seconds"] > 0 for e in entries.values())

    def test_obs_overhead_file_converts(self):
        entries = entries_from_bench_file("BENCH_obs_overhead.json")
        assert entries
        assert all(k.startswith("obs_overhead/") for k in entries)
        modes = {k.rsplit("/", 1)[1] for k in entries}
        # "provenance" (traced + card reconstruction) joined the modes;
        # keep the original three as the invariant floor.
        assert {"off", "disabled", "traced"} <= modes

    def test_unknown_benchmark_kind_rejected(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text(json.dumps({"benchmark": "mystery", "rows": []}))
        with pytest.raises(ValueError, match="mystery"):
            entries_from_bench_file(str(path))


class TestQuickSuite:
    @pytest.fixture(scope="class")
    def small_run(self):
        return run_quick_suite(n_objects=500, n_queries=8)

    def test_covers_every_access_method_plus_mining(self, small_run):
        expected = {f"quick/{a}/knn" for a in regression.QUICK_ACCESS_METHODS}
        expected.add("quick/dbscan/xtree")
        assert set(small_run) == expected

    def test_counters_are_deterministic(self, small_run):
        again = run_quick_suite(n_objects=500, n_queries=8)
        for key in small_run:
            assert small_run[key]["counters"] == again[key]["counters"], key

    def test_self_comparison_passes_check(self, small_run):
        again = run_quick_suite(n_objects=500, n_queries=8)
        report = compare(again, small_run, seconds_threshold=10.0)
        assert report.ok, render_comparison(report)


class TestCommittedBaselines:
    def test_committed_store_loads_and_covers_the_quick_suite(self):
        entries = load_store("benchmarks/baselines.json")
        for access in regression.QUICK_ACCESS_METHODS:
            assert f"quick/{access}/knn" in entries
        assert "quick/dbscan/xtree" in entries
        assert any(k.startswith("engine_kernels/") for k in entries)
        assert any(k.startswith("obs_overhead/") for k in entries)

    def test_quick_suite_counters_match_committed_baselines(self):
        baseline = load_store("benchmarks/baselines.json")
        current = run_quick_suite()
        report = compare(
            current,
            baseline,
            seconds_threshold=1e9,  # ignore timing noise: counters only
            counter_threshold=0.0,
        )
        assert report.ok, render_comparison(report)


class TestBenchCLI:
    def _bench(self, *argv):
        from repro.cli import main

        return main(["bench", *argv])

    def test_update_then_check_round_trip(self, tmp_path, capsys):
        baseline = str(tmp_path / "baselines.json")
        assert self._bench(
            "--suite", "none",
            "--import-bench", "BENCH_obs_overhead.json",
            "--baseline", baseline, "--update",
        ) == 0
        assert self._bench(
            "--suite", "none",
            "--import-bench", "BENCH_obs_overhead.json",
            "--baseline", baseline, "--check",
        ) == 0
        assert "ok:" in capsys.readouterr().out

    def test_injected_slowdown_fails_check_and_names_benchmark(
        self, tmp_path, capsys
    ):
        baseline = str(tmp_path / "baselines.json")
        doctored = tmp_path / "slow.json"
        result = json.load(open("BENCH_obs_overhead.json"))
        result["rows"][0]["seconds"] = {
            mode: seconds * 2.0
            for mode, seconds in result["rows"][0]["seconds"].items()
        }
        doctored.write_text(json.dumps(result))
        slow_key = f"obs_overhead/{result['rows'][0]['engine']}/off"

        assert self._bench(
            "--suite", "none",
            "--import-bench", "BENCH_obs_overhead.json",
            "--baseline", baseline, "--update",
        ) == 0
        exit_code = self._bench(
            "--suite", "none",
            "--import-bench", str(doctored),
            "--baseline", baseline, "--check", "--threshold", "0.5",
        )
        out = capsys.readouterr().out
        assert exit_code == 1
        assert f"REGRESSION: {slow_key}" in out

    def test_report_file_written(self, tmp_path):
        baseline = str(tmp_path / "baselines.json")
        report_path = tmp_path / "report.json"
        self._bench(
            "--suite", "none",
            "--import-bench", "BENCH_obs_overhead.json",
            "--baseline", baseline, "--update",
        )
        assert self._bench(
            "--suite", "none",
            "--import-bench", "BENCH_obs_overhead.json",
            "--baseline", baseline,
            "--report", str(report_path),
        ) == 0
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True
        assert payload["schema"] == SCHEMA_VERSION
