"""Tests for the structured observability layer (repro.obs)."""

import json
import math

import numpy as np
import pytest

from repro.core.database import Database
from repro.core.engine import engine_names, get_engine
from repro.core.types import knn_query, range_query
from repro.costmodel import Counters
from repro.obs import (
    CountersAdapter,
    MetricsRegistry,
    Observer,
    Tracer,
    attach_counters,
    read_jsonl,
    render_report,
    summarize_metrics,
    summarize_trace,
)
from repro.parallel.executor import ParallelDatabase, ParallelRun
from repro.storage.buffer import LRUBufferPool


@pytest.fixture(scope="module")
def vectors():
    return np.random.default_rng(7).random((900, 8))


def _answers_as_tuples(results):
    return [[(a.index, a.distance) for a in result] for result in results]


def _run_blocks(database, vectors, n_queries=18, block=6):
    queries = [vectors[i] for i in range(n_queries)]
    return database.run_in_blocks(
        queries,
        knn_query(5),
        block_size=block,
        db_indices=list(range(n_queries)),
        warm_start=True,
    )


class TestTracer:
    def test_span_nesting_records_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("block.flush", block=0):
            with tracer.span("query.drive"):
                with tracer.span("page.process", page_id=3):
                    tracer.event("avoidance.try", tries=4)
        records = tracer.records()
        # Spans are recorded at exit: innermost first, event before all.
        by_name = {r["name"]: r for r in records}
        event = by_name["avoidance.try"]
        page = by_name["page.process"]
        drive = by_name["query.drive"]
        block = by_name["block.flush"]
        assert event["parent_id"] == page["span_id"]
        assert page["parent_id"] == drive["span_id"]
        assert drive["parent_id"] == block["span_id"]
        assert block["parent_id"] is None
        assert (block["depth"], drive["depth"], page["depth"]) == (0, 1, 2)
        assert all(r["dur_s"] >= 0 for r in records if r["kind"] == "span")

    def test_ring_buffer_evicts_oldest_and_counts_drops(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.event("e", i=i)
        assert len(tracer) == 4
        assert tracer.n_emitted == 10
        assert tracer.n_dropped == 6
        kept = [r["attrs"]["i"] for r in tracer.records()]
        assert kept == [6, 7, 8, 9]

    def test_disabled_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.event("query.admit", slot=1)
        with tracer.span("page.process") as span:
            pass
        assert len(tracer) == 0
        assert tracer.n_emitted == 0
        # The disabled fast path hands out one shared null span.
        assert tracer.span("a") is tracer.span("b")

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("block.flush", size=3):
            tracer.event("query.admit", slot=0, kind="range")
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(str(path)) == 2
        parsed = read_jsonl(str(path))
        assert parsed == json.loads(
            "[" + ",".join(json.dumps(r) for r in tracer.records()) + "]"
        )
        assert {r["name"] for r in parsed} == {"block.flush", "query.admit"}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestMetricsRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_counter_gauge_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.inc("events.query.admit", 3)
        registry.set_gauge("parallel.skew", 1.25)
        for value in (1e-5, 2e-5, 4e-3, 0.5):
            registry.observe("phase.page.process.seconds", value)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["events.query.admit"] == 3
        assert snapshot["gauges"]["parallel.skew"] == 1.25
        hist = snapshot["histograms"]["phase.page.process.seconds"]
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(0.50403)
        assert hist["min"] == pytest.approx(1e-5)
        assert hist["max"] == pytest.approx(0.5)
        assert hist["p50"] <= hist["p95"] <= hist["max"]
        assert sum(hist["buckets"].values()) == 4

    def test_histogram_quantiles_monotone(self):
        registry = MetricsRegistry()
        h = registry.histogram("h")
        for value in np.linspace(1e-6, 1.0, 200):
            h.observe(float(value))
        assert h.quantile(0.1) <= h.quantile(0.5) <= h.quantile(0.99) <= h.max
        assert h.mean == pytest.approx(h.sum / h.count)

    def test_empty_histogram(self):
        h = MetricsRegistry().histogram("h")
        assert h.quantile(0.5) == 0.0
        assert h.snapshot()["count"] == 0

    def test_collectors_merged_at_snapshot(self):
        registry = MetricsRegistry()
        registry.register_collector(lambda: {"x": 1.0})
        registry.register_collector(lambda: {"y": 2.0})
        assert registry.snapshot()["collected"] == {"x": 1.0, "y": 2.0}

    def test_counters_adapter_publishes_all_fields(self):
        counters = Counters(
            random_page_reads=10,
            sequential_page_reads=5,
            distance_calculations=90,
            avoided_calculations=10,
            queries_completed=30,
        )
        registry = MetricsRegistry()
        attach_counters(registry, counters)
        collected = registry.snapshot()["collected"]
        for name in counters.as_dict():
            assert collected[f"cost.{name}"] == getattr(counters, name)
        assert collected["cost.page_reads"] == 15
        assert collected["derived.sharing_factor"] == pytest.approx(2.0)
        assert collected["derived.avoidance_hit_rate"] == pytest.approx(0.1)

    def test_adapter_reads_live_values(self):
        counters = Counters()
        adapter = CountersAdapter(counters)
        assert adapter.collect()["cost.distance_calculations"] == 0
        counters.distance_calculations += 7
        assert adapter.collect()["cost.distance_calculations"] == 7

    def test_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.observe("h", math.inf)  # inf must serialise, not crash
        path = tmp_path / "metrics.json"
        registry.write_json(str(path))
        assert json.load(open(path))["histograms"]["h"]["count"] == 1


class TestDerivedCounterProperties:
    def test_sharing_factor(self):
        counters = Counters()
        assert counters.sharing_factor == 0.0
        counters.random_page_reads = 4
        counters.queries_completed = 12
        assert counters.sharing_factor == pytest.approx(3.0)

    def test_avoidance_hit_rate(self):
        counters = Counters()
        assert counters.avoidance_hit_rate == 0.0
        counters.distance_calculations = 75
        counters.avoided_calculations = 25
        assert counters.avoidance_hit_rate == pytest.approx(0.25)


class TestBufferHitRate:
    def test_hit_rate_counts_lookups(self):
        pool = LRUBufferPool(4)
        assert pool.hit_rate == 0.0
        assert pool.access(1) is False
        assert pool.access(1) is True
        assert pool.access(2) is False
        assert pool.lookups == 3
        assert pool.hits == 1
        assert pool.hit_rate == pytest.approx(1 / 3)

    def test_zero_capacity_pool_still_counts(self):
        pool = LRUBufferPool(0)
        pool.access(1)
        pool.access(1)
        assert pool.lookups == 2
        assert pool.hits == 0
        assert pool.hit_rate == 0.0


class TestEngineRegistry:
    def test_engine_names_match_registry(self):
        names = engine_names()
        assert names == ["reference", "vectorized", "batched"]
        for name in names:
            assert callable(get_engine(name))

    def test_get_engine_without_observer_is_raw(self):
        from repro.core.engine import process_page_batched

        assert get_engine("batched") is process_page_batched

    def test_get_engine_with_observer_wraps(self):
        observer = Observer(trace=False)
        wrapped = get_engine("batched", observer)
        from repro.core.engine import process_page_batched

        assert wrapped is not process_page_batched


class TestObservedRunsAreEquivalent:
    @pytest.mark.parametrize("engine", ["reference", "vectorized", "batched"])
    def test_traced_run_identical_answers_and_counters(self, vectors, engine):
        plain = Database(vectors, access="xtree", engine=engine)
        expected = _answers_as_tuples(_run_blocks(plain, vectors))

        observer = Observer()
        traced = Database(vectors, access="xtree", engine=engine, observer=observer)
        got = _answers_as_tuples(_run_blocks(traced, vectors))

        assert got == expected
        assert traced.counters.as_dict() == plain.counters.as_dict()
        # ... and the run was actually observed.
        snapshot = observer.snapshot()
        assert snapshot["counters"]["pages.processed"] > 0
        assert snapshot["counters"]["events.query.admit"] == 18
        assert len(observer.tracer) > 0

    def test_disabled_tracing_is_noop_with_no_counter_drift(self, vectors):
        plain = Database(vectors, access="xtree")
        _run_blocks(plain, vectors)

        observer = Observer(trace=False)
        database = Database(vectors, access="xtree", observer=observer)
        _run_blocks(database, vectors)

        # Zero trace entries, zero drift in the paper's cost counters.
        assert len(observer.tracer) == 0
        assert observer.tracer.n_emitted == 0
        assert database.counters.as_dict() == plain.counters.as_dict()
        # Metrics (phase histograms) are still gathered.
        assert observer.metrics.histogram("phase.page.process.seconds").count > 0

    def test_range_queries_observed(self, vectors):
        observer = Observer()
        database = Database(vectors, access="scan", observer=observer)
        processor = database.processor()
        answers = processor.process([vectors[0]], [range_query(0.4)])
        assert answers
        names = {r["name"] for r in observer.tracer.records()}
        assert "query.admit" in names
        assert "page.process" in names

    def test_trace_has_expected_span_structure(self, vectors):
        observer = Observer()
        database = Database(vectors, access="xtree", observer=observer)
        _run_blocks(database, vectors)
        records = observer.tracer.records()
        spans = {r["name"] for r in records if r["kind"] == "span"}
        assert {"block.flush", "query.drive", "page.process"} <= spans
        # Every page.process span nests under a parent span.
        pages = [
            r for r in records if r["kind"] == "span" and r["name"] == "page.process"
        ]
        assert pages and all(r["parent_id"] is not None for r in pages)

    def test_metrics_snapshot_has_required_derived_metrics(self, vectors):
        observer = Observer()
        database = Database(vectors, access="xtree", observer=observer)
        _run_blocks(database, vectors)
        snapshot = observer.snapshot()
        collected = snapshot["collected"]
        assert collected["derived.sharing_factor"] == pytest.approx(
            database.counters.sharing_factor
        )
        assert collected["derived.avoidance_hit_rate"] == pytest.approx(
            database.counters.avoidance_hit_rate
        )
        assert collected["derived.buffer_hit_rate"] == pytest.approx(
            database.disk.buffer.hit_rate
        )
        assert "phase.page.process.seconds" in snapshot["histograms"]


class TestParallelObservability:
    def test_worker_run_events_and_skew(self, vectors):
        observer = Observer()
        cluster = ParallelDatabase(
            vectors, n_servers=3, access="scan", observer=observer
        )
        queries = [vectors[i] for i in range(6)]
        run = cluster.multiple_similarity_query(
            queries, knn_query(4), db_indices=list(range(6))
        )
        assert run.skew >= 1.0
        events = [
            r for r in observer.tracer.records() if r["name"] == "worker.run"
        ]
        assert len(events) == 3
        assert {e["attrs"]["server"] for e in events} == {0, 1, 2}
        snapshot = observer.snapshot()
        assert snapshot["gauges"]["parallel.skew"] == pytest.approx(run.skew)
        assert snapshot["histograms"]["server.modelled_seconds"]["count"] == 3

    def test_skew_properties(self):
        assert ParallelRun(answers=[], per_server=[]).skew == 1.0
        with pytest.raises(ValueError):
            ParallelRun(answers=[], per_server=[]).wall_skew


class TestReportRendering:
    def test_render_report_from_real_run(self, vectors, tmp_path):
        observer = Observer()
        database = Database(vectors, access="xtree", observer=observer)
        _run_blocks(database, vectors)
        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.jsonl"
        observer.write_metrics(str(metrics_path))
        observer.write_trace(str(trace_path))
        text = render_report(
            json.load(open(metrics_path)), read_jsonl(str(trace_path))
        )
        assert "sharing factor" in text
        assert "phase latencies" in text
        assert "page.process" in text
        assert "slowest" in text

    def test_summaries_handle_empty_input(self):
        assert "run summary" in summarize_metrics({})
        assert "trace (0 entries)" in summarize_trace([])
