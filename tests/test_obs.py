"""Tests for the structured observability layer (repro.obs)."""

import json
import math

import numpy as np
import pytest

from repro.core.database import Database
from repro.core.engine import engine_names, get_engine
from repro.core.types import knn_query, range_query
from repro.costmodel import Counters
from repro.obs import (
    CountersAdapter,
    MetricsRegistry,
    Observer,
    Tracer,
    attach_counters,
    read_jsonl,
    render_report,
    summarize_metrics,
    summarize_trace,
)
from repro.parallel.executor import ParallelDatabase, ParallelRun
from repro.storage.buffer import LRUBufferPool


@pytest.fixture(scope="module")
def vectors():
    return np.random.default_rng(7).random((900, 8))


def _answers_as_tuples(results):
    return [[(a.index, a.distance) for a in result] for result in results]


def _run_blocks(database, vectors, n_queries=18, block=6):
    queries = [vectors[i] for i in range(n_queries)]
    return database.run_in_blocks(
        queries,
        knn_query(5),
        block_size=block,
        db_indices=list(range(n_queries)),
        warm_start=True,
    )


class TestTracer:
    def test_span_nesting_records_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("block.flush", block=0):
            with tracer.span("query.drive"):
                with tracer.span("page.process", page_id=3):
                    tracer.event("avoidance.try", tries=4)
        records = tracer.records()
        # Spans are recorded at exit: innermost first, event before all.
        by_name = {r["name"]: r for r in records}
        event = by_name["avoidance.try"]
        page = by_name["page.process"]
        drive = by_name["query.drive"]
        block = by_name["block.flush"]
        assert event["parent_id"] == page["span_id"]
        assert page["parent_id"] == drive["span_id"]
        assert drive["parent_id"] == block["span_id"]
        assert block["parent_id"] is None
        assert (block["depth"], drive["depth"], page["depth"]) == (0, 1, 2)
        assert all(r["dur_s"] >= 0 for r in records if r["kind"] == "span")

    def test_ring_buffer_evicts_oldest_and_counts_drops(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.event("e", i=i)
        assert len(tracer) == 4
        assert tracer.n_emitted == 10
        assert tracer.n_dropped == 6
        kept = [r["attrs"]["i"] for r in tracer.records()]
        assert kept == [6, 7, 8, 9]

    def test_disabled_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.event("query.admit", slot=1)
        with tracer.span("page.process") as span:
            pass
        assert len(tracer) == 0
        assert tracer.n_emitted == 0
        # The disabled fast path hands out one shared null span.
        assert tracer.span("a") is tracer.span("b")

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("block.flush", size=3):
            tracer.event("query.admit", slot=0, kind="range")
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(str(path)) == 2
        parsed = read_jsonl(str(path))
        assert parsed == json.loads(
            "[" + ",".join(json.dumps(r) for r in tracer.records()) + "]"
        )
        assert {r["name"] for r in parsed} == {"block.flush", "query.admit"}

    def test_gzip_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("block.flush", size=3):
            tracer.event("query.admit", slot=0, kind="range")
        path = tmp_path / "trace.jsonl.gz"
        assert tracer.export_jsonl(str(path)) == 2
        # Actually gzip-compressed on disk (magic bytes), transparently
        # parsed back by read_jsonl.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        assert read_jsonl(str(path)) == tracer.records()

    def test_absorb_preserves_worker_stamps(self):
        parent = Tracer(trace_id="t-1")
        with parent.span("parallel.block") as block:
            pass
        worker = Tracer(
            trace_id="t-1",
            server_id=3,
            id_base=10_000,
            root_parent_id=block.span_id,
        )
        with worker.span("worker.phase1"):
            worker.event("prefilter.prune", page_id=5)
        assert parent.absorb(worker.records()) == 2
        records = parent.records()
        assert all(r["trace_id"] == "t-1" for r in records)
        absorbed = [r for r in records if r.get("server_id") == 3]
        assert len(absorbed) == 2
        # Worker ids come from the disjoint id_base range, and the
        # worker's root spans adopted the parent block as parent.
        phase = next(r for r in absorbed if r["name"] == "worker.phase1")
        assert phase["span_id"] > 10_000
        assert phase["parent_id"] == block.span_id

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestMetricsRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_counter_gauge_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.inc("events.query.admit", 3)
        registry.set_gauge("parallel.skew", 1.25)
        for value in (1e-5, 2e-5, 4e-3, 0.5):
            registry.observe("phase.page.process.seconds", value)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["events.query.admit"] == 3
        assert snapshot["gauges"]["parallel.skew"] == 1.25
        hist = snapshot["histograms"]["phase.page.process.seconds"]
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(0.50403)
        assert hist["min"] == pytest.approx(1e-5)
        assert hist["max"] == pytest.approx(0.5)
        assert hist["p50"] <= hist["p95"] <= hist["max"]
        assert sum(hist["buckets"].values()) == 4

    def test_histogram_quantiles_monotone(self):
        registry = MetricsRegistry()
        h = registry.histogram("h")
        for value in np.linspace(1e-6, 1.0, 200):
            h.observe(float(value))
        assert h.quantile(0.1) <= h.quantile(0.5) <= h.quantile(0.99) <= h.max
        assert h.mean == pytest.approx(h.sum / h.count)

    def test_quantile_interpolates_within_the_covering_bucket(self):
        # Regression pin: quantiles interpolate linearly between bucket
        # bounds (clamped to observed min/max) instead of reporting the
        # bucket's upper bound.
        h = MetricsRegistry().histogram("h")
        h.observe(0.25)
        assert h.quantile(0.5) == 0.25  # exactly the observation
        uniform = MetricsRegistry().histogram("u")
        for value in np.linspace(0.0, 1.0, 1001):
            uniform.observe(float(value))
        # On dense uniform data the interpolated estimate tracks the
        # true quantile far inside any single bucket's width.
        for q in (0.1, 0.25, 0.5, 0.9):
            assert uniform.quantile(q) == pytest.approx(q, abs=0.05)
        # Monotone in q, and the extremes clamp to observed min/max.
        assert uniform.quantile(0.0) >= uniform.min
        assert uniform.quantile(1.0) <= uniform.max

    def test_empty_histogram_quantiles_are_nan(self):
        # An empty histogram has no quantiles: NaN, deterministically,
        # so "no observations" is distinguishable from "observed zero".
        h = MetricsRegistry().histogram("h")
        assert math.isnan(h.quantile(0.5))
        snapshot = h.snapshot()
        assert snapshot["count"] == 0
        assert math.isnan(snapshot["p50"])
        assert math.isnan(snapshot["p95"])
        assert math.isnan(snapshot["p99"])
        h.observe(0.25)
        assert h.quantile(0.5) == pytest.approx(0.25)

    def test_collectors_merged_at_snapshot(self):
        registry = MetricsRegistry()
        registry.register_collector(lambda: {"x": 1.0})
        registry.register_collector(lambda: {"y": 2.0})
        assert registry.snapshot()["collected"] == {"x": 1.0, "y": 2.0}

    def test_counters_adapter_publishes_all_fields(self):
        counters = Counters(
            random_page_reads=10,
            sequential_page_reads=5,
            distance_calculations=90,
            avoided_calculations=10,
            queries_completed=30,
        )
        registry = MetricsRegistry()
        attach_counters(registry, counters)
        collected = registry.snapshot()["collected"]
        for name in counters.as_dict():
            assert collected[f"cost.{name}"] == getattr(counters, name)
        assert collected["cost.page_reads"] == 15
        assert collected["derived.sharing_factor"] == pytest.approx(2.0)
        assert collected["derived.avoidance_hit_rate"] == pytest.approx(0.1)

    def test_adapter_reads_live_values(self):
        counters = Counters()
        adapter = CountersAdapter(counters)
        assert adapter.collect()["cost.distance_calculations"] == 0
        counters.distance_calculations += 7
        assert adapter.collect()["cost.distance_calculations"] == 7

    def test_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.observe("h", math.inf)  # inf must serialise, not crash
        path = tmp_path / "metrics.json"
        registry.write_json(str(path))
        assert json.load(open(path))["histograms"]["h"]["count"] == 1


class TestDerivedCounterProperties:
    def test_sharing_factor(self):
        counters = Counters()
        assert counters.sharing_factor == 0.0
        counters.random_page_reads = 4
        counters.queries_completed = 12
        assert counters.sharing_factor == pytest.approx(3.0)

    def test_avoidance_hit_rate(self):
        counters = Counters()
        assert counters.avoidance_hit_rate == 0.0
        counters.distance_calculations = 75
        counters.avoided_calculations = 25
        assert counters.avoidance_hit_rate == pytest.approx(0.25)


class TestBufferHitRate:
    def test_hit_rate_counts_lookups(self):
        pool = LRUBufferPool(4)
        assert pool.hit_rate == 0.0
        assert pool.access(1) is False
        assert pool.access(1) is True
        assert pool.access(2) is False
        assert pool.lookups == 3
        assert pool.hits == 1
        assert pool.hit_rate == pytest.approx(1 / 3)

    def test_zero_capacity_pool_still_counts(self):
        pool = LRUBufferPool(0)
        pool.access(1)
        pool.access(1)
        assert pool.lookups == 2
        assert pool.hits == 0
        assert pool.hit_rate == 0.0


class TestEngineRegistry:
    def test_engine_names_match_registry(self):
        names = engine_names()
        assert names == ["reference", "vectorized", "batched"]
        for name in names:
            assert callable(get_engine(name))

    def test_get_engine_without_observer_is_raw(self):
        from repro.core.engine import process_page_batched

        assert get_engine("batched") is process_page_batched

    def test_get_engine_with_observer_wraps(self):
        observer = Observer(trace=False)
        wrapped = get_engine("batched", observer)
        from repro.core.engine import process_page_batched

        assert wrapped is not process_page_batched


class TestObservedRunsAreEquivalent:
    @pytest.mark.parametrize("engine", ["reference", "vectorized", "batched"])
    def test_traced_run_identical_answers_and_counters(self, vectors, engine):
        plain = Database(vectors, access="xtree", engine=engine)
        expected = _answers_as_tuples(_run_blocks(plain, vectors))

        observer = Observer()
        traced = Database(vectors, access="xtree", engine=engine, observer=observer)
        got = _answers_as_tuples(_run_blocks(traced, vectors))

        assert got == expected
        assert traced.counters.as_dict() == plain.counters.as_dict()
        # ... and the run was actually observed.
        snapshot = observer.snapshot()
        assert snapshot["counters"]["pages.processed"] > 0
        assert snapshot["counters"]["events.query.admit"] == 18
        assert len(observer.tracer) > 0

    def test_disabled_tracing_is_noop_with_no_counter_drift(self, vectors):
        plain = Database(vectors, access="xtree")
        _run_blocks(plain, vectors)

        observer = Observer(trace=False)
        database = Database(vectors, access="xtree", observer=observer)
        _run_blocks(database, vectors)

        # Zero trace entries, zero drift in the paper's cost counters.
        assert len(observer.tracer) == 0
        assert observer.tracer.n_emitted == 0
        assert database.counters.as_dict() == plain.counters.as_dict()
        # Metrics (phase histograms) are still gathered.
        assert observer.metrics.histogram("phase.page.process.seconds").count > 0

    def test_range_queries_observed(self, vectors):
        observer = Observer()
        database = Database(vectors, access="scan", observer=observer)
        processor = database.processor()
        answers = processor.process([vectors[0]], [range_query(0.4)])
        assert answers
        names = {r["name"] for r in observer.tracer.records()}
        assert "query.admit" in names
        assert "page.process" in names

    def test_trace_has_expected_span_structure(self, vectors):
        observer = Observer()
        database = Database(vectors, access="xtree", observer=observer)
        _run_blocks(database, vectors)
        records = observer.tracer.records()
        spans = {r["name"] for r in records if r["kind"] == "span"}
        assert {"block.flush", "query.drive", "page.process"} <= spans
        # Every page.process span nests under a parent span.
        pages = [
            r for r in records if r["kind"] == "span" and r["name"] == "page.process"
        ]
        assert pages and all(r["parent_id"] is not None for r in pages)

    def test_metrics_snapshot_has_required_derived_metrics(self, vectors):
        observer = Observer()
        database = Database(vectors, access="xtree", observer=observer)
        _run_blocks(database, vectors)
        snapshot = observer.snapshot()
        collected = snapshot["collected"]
        assert collected["derived.sharing_factor"] == pytest.approx(
            database.counters.sharing_factor
        )
        assert collected["derived.avoidance_hit_rate"] == pytest.approx(
            database.counters.avoidance_hit_rate
        )
        assert collected["derived.buffer_hit_rate"] == pytest.approx(
            database.disk.buffer.hit_rate
        )
        assert "phase.page.process.seconds" in snapshot["histograms"]


class TestParallelObservability:
    def test_worker_run_events_and_skew(self, vectors):
        observer = Observer()
        cluster = ParallelDatabase(
            vectors, n_servers=3, access="scan", observer=observer
        )
        queries = [vectors[i] for i in range(6)]
        run = cluster.multiple_similarity_query(
            queries, knn_query(4), db_indices=list(range(6))
        )
        assert run.skew >= 1.0
        events = [
            r for r in observer.tracer.records() if r["name"] == "worker.run"
        ]
        assert len(events) == 3
        assert {e["attrs"]["server"] for e in events} == {0, 1, 2}
        snapshot = observer.snapshot()
        assert snapshot["gauges"]["parallel.skew"] == pytest.approx(run.skew)
        assert snapshot["histograms"]["server.modelled_seconds"]["count"] == 3

    def test_skew_properties(self):
        assert ParallelRun(answers=[], per_server=[]).skew == 1.0
        with pytest.raises(ValueError):
            ParallelRun(answers=[], per_server=[]).wall_skew


class TestReportRendering:
    def test_render_report_from_real_run(self, vectors, tmp_path):
        observer = Observer()
        database = Database(vectors, access="xtree", observer=observer)
        _run_blocks(database, vectors)
        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.jsonl"
        observer.write_metrics(str(metrics_path))
        observer.write_trace(str(trace_path))
        text = render_report(
            json.load(open(metrics_path)), read_jsonl(str(trace_path))
        )
        assert "sharing factor" in text
        assert "phase latencies" in text
        assert "page.process" in text
        assert "slowest" in text

    def test_summaries_handle_empty_input(self):
        assert "run summary" in summarize_metrics({})
        assert "trace (0 entries)" in summarize_trace([])

    def test_phase_table_reports_tail_quantiles(self, vectors):
        observer = Observer()
        database = Database(vectors, access="xtree", observer=observer)
        _run_blocks(database, vectors)
        text = render_report(observer.snapshot(), None)
        assert "p99" in text and "p95" in text and "p50" in text


ALL_ACCESS_METHODS = ["scan", "xtree", "rstar", "mtree", "vafile"]


@pytest.fixture(scope="module")
def clustered():
    # Tight clusters so every tree access method actually prunes
    # subtrees (uniform data defeats the M-tree's covering radii).
    from repro.workloads import make_gaussian_mixture

    return make_gaussian_mixture(
        n=900, dimension=8, n_clusters=12, cluster_std=0.03, seed=3
    ).vectors


class TestIndexTraversalTelemetry:
    @pytest.mark.parametrize("access", ALL_ACCESS_METHODS)
    def test_knn_identity_and_traversal_events(self, clustered, access):
        vectors = clustered
        plain = Database(vectors, access=access)
        expected = _answers_as_tuples(_run_blocks(plain, vectors))

        observer = Observer()
        traced = Database(vectors, access=access, observer=observer)
        got = _answers_as_tuples(_run_blocks(traced, vectors))

        assert got == expected
        assert traced.counters.as_dict() == plain.counters.as_dict()

        snapshot = observer.snapshot()
        assert snapshot["counters"]["events.index.node_visit"] > 0
        visits = [
            r for r in observer.tracer.records() if r["name"] == "index.node_visit"
        ]
        assert visits
        assert all(r["attrs"]["access"] == access for r in visits)
        assert all(r["attrs"]["level"] >= 0 for r in visits)
        assert all(r["attrs"]["entries"] > 0 for r in visits)
        if access == "scan":
            # A scan reads everything: no subtree is ever pruned.
            assert snapshot["gauges"]["index.prune_effectiveness"] == 0.0
        else:
            assert snapshot["counters"]["events.index.prune"] > 0
            assert snapshot["counters"]["index.subtrees_pruned"] > 0
            # Gauge holds the LAST stream's effectiveness (per-query).
            assert 0.0 <= snapshot["gauges"]["index.prune_effectiveness"] <= 1.0
            prunes = [
                r for r in observer.tracer.records() if r["name"] == "index.prune"
            ]
            assert prunes and all(r["attrs"]["count"] > 0 for r in prunes)

    def test_vafile_filter_step_reports_candidate_set(self, vectors):
        observer = Observer()
        database = Database(vectors, access="vafile", observer=observer)
        _run_blocks(database, vectors)
        filters = [
            r for r in observer.tracer.records() if r["name"] == "index.filter"
        ]
        assert filters
        assert all(f["attrs"]["objects"] == len(vectors) for f in filters)
        assert all(f["attrs"]["pages"] > 0 for f in filters)
        # At the final radius at least k objects pass the filter.
        assert observer.snapshot()["gauges"]["index.vafile.candidates"] >= 5

    @pytest.mark.parametrize("access", ALL_ACCESS_METHODS)
    def test_no_observer_means_no_telemetry_object(self, vectors, access):
        database = Database(vectors, access=access)
        assert database.access_method.observer is None
        assert database.access_method.traversal_telemetry() is None


class TestMiningSpans:
    def test_dbscan_identity_and_nested_spans(self, vectors):
        from repro.mining.dbscan import dbscan

        data = vectors[:300]
        plain = Database(data, access="xtree")
        expected = dbscan(plain, eps=0.45, min_pts=4, batch_size=4)

        observer = Observer()
        traced = Database(data, access="xtree", observer=observer)
        got = dbscan(traced, eps=0.45, min_pts=4, batch_size=4)

        assert np.array_equal(got.labels, expected.labels)
        assert got.n_clusters == expected.n_clusters
        assert got.queries_issued == expected.queries_issued
        assert traced.counters.as_dict() == plain.counters.as_dict()

        spans = [
            r for r in observer.tracer.records() if r["kind"] == "span"
        ]
        by_id = {r["span_id"]: r for r in spans}
        assert sum(1 for r in spans if r["name"] == "mine.dbscan") == 1
        iterations = [r for r in spans if r["name"] == "mine.iteration"]
        assert iterations
        assert all(r["attrs"]["driver"] == "dbscan" for r in iterations)

        def ancestor_names(record):
            names = set()
            while record["parent_id"] is not None:
                record = by_id.get(record["parent_id"])
                if record is None:  # parent evicted from the ring buffer
                    break
                names.add(record["name"])
            return names

        # End-to-end nesting: mining loop -> multi-query -> page engine.
        drives = [r for r in spans if r["name"] == "query.drive"]
        pages = [r for r in spans if r["name"] == "page.process"]
        assert drives and pages
        assert any("mine.iteration" in ancestor_names(r) for r in drives)
        assert any(
            {"mine.iteration", "mine.dbscan"} <= ancestor_names(r) for r in pages
        )

    def test_all_drivers_emit_iteration_spans(self, vectors):
        from repro.mining.classify import knn_classify
        from repro.mining.explore import explore_neighborhoods
        from repro.mining.proximity import proximity_analysis
        from repro.mining.trend import detect_trends

        data = np.asarray(vectors[:200])
        labels = np.arange(len(data)) % 3
        runs = {
            "mine.explore": lambda db: explore_neighborhoods(
                db, [0, 1], knn_query(4), max_iterations=3
            ),
            "mine.proximity": lambda db: proximity_analysis(db, [0, 1, 2]),
            "mine.classify": lambda db: knn_classify(
                db, [0, 1, 2, 3], k=3, labels=labels
            ),
            "mine.trend": lambda db: detect_trends(
                db, 0, np.linspace(0.0, 1.0, len(data)), n_paths=2, path_length=2
            ),
        }
        for phase_name, run in runs.items():
            observer = Observer()
            database = Database(data, access="xtree", observer=observer)
            run(database)
            spans = {
                r["name"]
                for r in observer.tracer.records()
                if r["kind"] == "span"
            }
            assert phase_name in spans, phase_name
            assert "mine.iteration" in spans, phase_name
            histogram = observer.metrics.histogram("phase.mine.iteration.seconds")
            assert histogram.count > 0

    def test_mining_without_observer_unchanged(self, vectors):
        from repro.mining.dbscan import dbscan

        data = vectors[:200]
        database = Database(data, access="xtree")
        result = dbscan(database, eps=0.45, min_pts=4, batch_size=3)
        assert result.n_clusters >= 0  # runs through the nullcontext path


class TestDeterministicOutput:
    def test_write_metrics_is_byte_stable(self, vectors, tmp_path):
        observer = Observer()
        database = Database(vectors, access="xtree", observer=observer)
        _run_blocks(database, vectors)
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        observer.write_metrics(str(first))
        observer.write_metrics(str(second))
        assert first.read_bytes() == second.read_bytes()
        payload = json.loads(first.read_text())
        assert list(payload) == sorted(payload)
        assert list(payload["counters"]) == sorted(payload["counters"])

    def test_stable_floats_rounds_to_nine_significant_digits(self):
        from repro.obs import stable_floats

        assert stable_floats(0.1 + 0.2) == 0.3
        assert stable_floats({"a": [1.23456789012345, 2]}) == {
            "a": [1.23456789, 2]
        }
        assert stable_floats(float("inf")) == float("inf")
        assert stable_floats(True) is True


class TestPrometheusExport:
    def test_renders_all_metric_kinds(self, vectors):
        observer = Observer()
        database = Database(vectors, access="xtree", observer=observer)
        _run_blocks(database, vectors)
        text = observer.metrics.to_prometheus()
        assert "# TYPE repro_events_index_node_visit counter" in text
        assert "# TYPE repro_index_prune_effectiveness gauge" in text
        assert "# TYPE repro_phase_page_process_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert "repro_phase_page_process_seconds_sum" in text
        assert "repro_phase_page_process_seconds_count" in text
        # Collected values (derived.* from the Counters adapter) export too.
        assert "repro_derived_sharing_factor" in text
        assert text.endswith("\n")

    def test_type_lines_dedupe_when_names_collide(self):
        # "a.b" and "a:b"... no -- colons are legal.  "a.b" and "a b"
        # both mangle to repro_a_b; the page must carry one TYPE line.
        registry = MetricsRegistry()
        registry.inc("events.query admit")
        registry.inc("events.query.admit")
        text = registry.to_prometheus()
        type_lines = [
            line for line in text.splitlines() if line.startswith("# TYPE")
        ]
        assert len(type_lines) == len(set(type_lines))
        assert (
            text.count("# TYPE repro_events_query_admit counter") == 1
        )

    def test_illegal_chars_mangled_and_leading_digit_guarded(self):
        registry = MetricsRegistry()
        registry.inc("99th.weird-metric")
        text = registry.to_prometheus(prefix="")
        assert "_99th_weird_metric 1" in text

    def test_timeline_window_exports_rate_gauges(self):
        from repro.obs import TimelineCollector

        registry = MetricsRegistry()
        timeline = TimelineCollector(registry, window_ticks=2)
        registry.inc("events.service.submit", 6)
        timeline.record_block(
            {"random_page_reads": 4, "queries_completed": 8}
        )
        timeline.advance()
        timeline.advance()
        text = registry.to_prometheus(timeline=timeline)
        assert "# TYPE repro_events_service_submit_rate gauge" in text
        assert "repro_events_service_submit_rate 3" in text  # 6 over 2 ticks
        assert "# TYPE repro_timeline_pages_per_tick gauge" in text
        assert "repro_timeline_pages_per_tick 2" in text
        assert "repro_timeline_sharing_factor 2" in text
        # Without a closed window, no rate series appear.
        empty = TimelineCollector(MetricsRegistry(), window_ticks=4)
        assert "_rate" not in registry.to_prometheus(timeline=empty)

    def test_write_prometheus_file(self, vectors, tmp_path):
        observer = Observer()
        database = Database(vectors, access="xtree", observer=observer)
        _run_blocks(database, vectors)
        path = tmp_path / "metrics.prom"
        observer.write_prometheus(str(path))
        content = path.read_text()
        lines = [l for l in content.splitlines() if l and not l.startswith("#")]
        assert lines
        for line in lines:
            name, value = line.rsplit(" ", 1)
            float(value)  # every sample line ends in a parseable number


class TestTracerRobustness:
    def test_ring_buffer_overflow_keeps_newest_under_load(self, vectors):
        observer = Observer(trace_capacity=32)
        database = Database(vectors, access="xtree", observer=observer)
        _run_blocks(database, vectors)
        tracer = observer.tracer
        assert len(tracer) == 32
        assert tracer.n_dropped == tracer.n_emitted - 32
        assert tracer.n_dropped > 0
        snapshot = observer.snapshot()
        assert snapshot["trace"]["dropped"] == tracer.n_dropped
        assert snapshot["trace"]["capacity"] == 32

    def test_process_backend_trace_jsonl_round_trip(self, vectors, tmp_path):
        observer = Observer(trace_capacity=4096)
        cluster = ParallelDatabase(
            vectors, n_servers=2, access="scan", observer=observer
        )
        queries = [vectors[i] for i in range(4)]
        run = cluster.multiple_similarity_query(
            queries, knn_query(3), db_indices=list(range(4)), backend="process"
        )
        assert run.wall_seconds is not None
        path = tmp_path / "trace.jsonl"
        n = observer.write_trace(str(path))
        parsed = read_jsonl(str(path))
        assert len(parsed) == n == len(observer.tracer)
        assert parsed == observer.tracer.records()
        worker_events = [r for r in parsed if r["name"] == "worker.run"]
        assert len(worker_events) == 2
        assert all(
            e["attrs"]["backend"] == "process" for e in worker_events
        )
