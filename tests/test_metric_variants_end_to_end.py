"""End-to-end queries under non-default metrics, plus API edge coverage."""

import numpy as np
import pytest

from repro import Database, knn_query, range_query
from repro.metric import (
    ManhattanDistance,
    QuadraticFormDistance,
    WeightedEuclideanDistance,
)


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(101)
    centers = rng.random((4, 6))
    return np.clip(
        centers[rng.integers(0, 4, 400)] + rng.standard_normal((400, 6)) * 0.05,
        0,
        1,
    )


def brute_knn(metric, vectors, query, k):
    distances = sorted(metric.one(v, query) for v in vectors)
    return distances[:k]


class TestWeightedEuclideanEndToEnd:
    @pytest.mark.parametrize("access", ["scan", "xtree", "mtree"])
    def test_knn_with_weights(self, vectors, access):
        metric = WeightedEuclideanDistance(np.linspace(0.2, 3.0, 6))
        database = Database(vectors, metric=metric, access=access, block_size=2048)
        query = vectors[11]
        answers = database.similarity_query(query, knn_query(6))
        expected = brute_knn(metric, vectors, query, 6)
        assert sorted(a.distance for a in answers) == pytest.approx(expected)

    def test_multiple_query_with_weights(self, vectors):
        metric = WeightedEuclideanDistance(np.linspace(0.2, 3.0, 6))
        database = Database(vectors, metric=metric, access="xtree", block_size=2048)
        queries = [vectors[i] for i in range(8)]
        results = database.multiple_similarity_query(queries, knn_query(4))
        for query, answers in zip(queries, results):
            expected = brute_knn(metric, vectors, query, 4)
            assert sorted(a.distance for a in answers) == pytest.approx(expected)


class TestManhattanEndToEnd:
    @pytest.mark.parametrize("access", ["scan", "xtree"])
    def test_range_query(self, vectors, access):
        metric = ManhattanDistance()
        database = Database(vectors, metric=metric, access=access, block_size=2048)
        query = vectors[42]
        answers = database.similarity_query(query, range_query(0.4))
        expected = {
            i for i, v in enumerate(vectors) if metric.one(v, query) <= 0.4
        }
        assert {a.index for a in answers} == expected


class TestQuadraticFormEndToEnd:
    def test_histogram_similarity(self):
        rng = np.random.default_rng(7)
        histograms = rng.dirichlet(np.full(8, 0.6), size=250)
        metric = QuadraticFormDistance.color_histogram(8)
        database = Database(
            histograms, metric=metric, access="xtree", block_size=1024
        )
        query = histograms[0]
        answers = database.similarity_query(query, knn_query(5))
        expected = brute_knn(metric, histograms, query, 5)
        assert sorted(a.distance for a in answers) == pytest.approx(expected)

    def test_multiple_query_avoidance_still_sound(self):
        # The quadratic form is a metric, so Lemmas 1/2 apply unchanged.
        rng = np.random.default_rng(8)
        histograms = rng.dirichlet(np.full(8, 0.6), size=300)
        metric = QuadraticFormDistance.color_histogram(8)
        # Small pages so the batch spans many pages and the avoidance
        # machinery engages after the first page saturates each query.
        database = Database(histograms, metric=metric, access="scan", block_size=512)
        queries = [histograms[i] for i in range(10)]
        with database.measure() as run:
            results = database.multiple_similarity_query(queries, knn_query(3))
        # Lemma evaluations ran (Dirichlet histograms are tightly packed,
        # so how many succeed depends on the draw); answers must be exact.
        assert run.counters.avoidance_tries > 0
        for query, answers in zip(queries, results):
            expected = brute_knn(metric, histograms, query, 3)
            assert sorted(a.distance for a in answers) == pytest.approx(expected)


class TestPageStreamApi:
    def test_drain_yields_everything(self, vectors):
        database = Database(vectors, access="xtree", block_size=2048)
        stream = database.access_method.page_stream(vectors[0])
        pages = list(stream.drain())
        assert len(pages) == len(database.access_method.data_pages())
        # Exhausted afterwards.
        assert stream.next_page(float("inf")) is None

    def test_default_lower_bounds_are_zero(self, vectors):
        database = Database(vectors, access="scan", block_size=2048)
        stream = database.access_method.page_stream(vectors[0])
        _, page = stream.next_page(float("inf"))
        bounds = stream.lower_bounds_for_others(page, vectors[:3], 0.0, None)
        assert list(bounds) == [0.0, 0.0, 0.0]

    def test_negative_radius_ends_scan_stream(self, vectors):
        database = Database(vectors, access="scan", block_size=2048)
        stream = database.access_method.page_stream(vectors[0])
        assert stream.next_page(-1.0) is None


class TestAnswerDeterminism:
    def test_materialize_breaks_ties_by_index(self):
        from repro.core.answers import Answer, AnswerList

        answers = AnswerList(range_query(1.0))
        answers.offer(9, 0.5)
        answers.offer(2, 0.5)
        answers.offer(5, 0.5)
        assert answers.materialize() == [
            Answer(2, 0.5),
            Answer(5, 0.5),
            Answer(9, 0.5),
        ]

    def test_repr_is_informative(self):
        from repro.core.answers import AnswerList

        answers = AnswerList(knn_query(2))
        assert "inf" in repr(answers)
        answers.offer(1, 0.25)
        answers.offer(2, 0.75)
        assert "0.75" in repr(answers)
