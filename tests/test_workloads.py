"""Tests for the dataset and query workload generators."""

import numpy as np
import pytest

from repro import check_metric_axioms
from repro.workloads import (
    make_astronomy,
    make_gaussian_mixture,
    make_image_histograms,
    make_uniform,
    make_web_sessions,
    sample_database_queries,
)


class TestAstronomy:
    def test_shape_and_bounds(self):
        dataset = make_astronomy(n=500)
        assert dataset.vectors.shape == (500, 20)
        assert np.all(dataset.vectors >= 0) and np.all(dataset.vectors <= 1)

    def test_labels_are_classes(self):
        dataset = make_astronomy(n=500, n_classes=7)
        assert set(np.unique(dataset.labels)) <= set(range(7))

    def test_deterministic(self):
        a = make_astronomy(n=200, seed=5)
        b = make_astronomy(n=200, seed=5)
        assert np.array_equal(a.vectors, b.vectors)

    def test_seed_changes_data(self):
        a = make_astronomy(n=200, seed=5)
        b = make_astronomy(n=200, seed=6)
        assert not np.array_equal(a.vectors, b.vectors)

    def test_clustered_structure(self):
        # Points must be much closer to same-cluster points than to the
        # dataset at large (low intrinsic dimension / clustering).
        dataset = make_astronomy(n=2000, seed=1)
        vectors = dataset.vectors
        sample = vectors[:200]
        d_all = np.sqrt(((sample[:, None] - sample[None, :]) ** 2).sum(-1))
        near = np.partition(d_all + np.eye(200) * 9, 1, axis=1)[:, 1]
        assert near.mean() < np.median(d_all) / 2


class TestImageHistograms:
    def test_valid_histograms(self):
        dataset = make_image_histograms(n=300)
        assert dataset.vectors.shape == (300, 64)
        assert np.all(dataset.vectors >= 0)
        assert np.allclose(dataset.vectors.sum(axis=1), 1.0)

    def test_highly_clustered(self):
        dataset = make_image_histograms(n=1000, seed=2)
        labels = dataset.labels
        vectors = dataset.vectors
        # Mean intra-cluster distance well below mean inter-cluster distance.
        rng = np.random.default_rng(0)
        intra, inter = [], []
        for _ in range(400):
            i, j = rng.integers(0, len(vectors), 2)
            d = float(np.sqrt(((vectors[i] - vectors[j]) ** 2).sum()))
            (intra if labels[i] == labels[j] else inter).append(d)
        assert np.mean(intra) < 0.5 * np.mean(inter)

    def test_zipf_cluster_sizes(self):
        dataset = make_image_histograms(n=2000, seed=3)
        __, counts = np.unique(dataset.labels, return_counts=True)
        counts = np.sort(counts)[::-1]
        assert counts[0] > 4 * counts[len(counts) // 2]


class TestOtherGenerators:
    def test_uniform(self):
        dataset = make_uniform(n=100, dimension=5)
        assert dataset.vectors.shape == (100, 5)
        assert dataset.labels is None

    def test_gaussian_mixture_labels(self):
        dataset = make_gaussian_mixture(n=100, n_clusters=4)
        assert len(np.unique(dataset.labels)) <= 4

    def test_web_sessions_are_strings(self):
        dataset = make_web_sessions(n=50)
        assert len(dataset) == 50
        assert all(isinstance(s, str) and s.startswith("/") for s in dataset)
        assert dataset.labels is not None

    def test_web_sessions_metric_compatible(self):
        dataset = make_web_sessions(n=20)
        check_metric_axioms("levenshtein", list(dataset), max_triples=100)

    def test_web_sessions_cluster_by_profile(self):
        from repro.metric import get_distance

        dataset = make_web_sessions(n=120, seed=4)
        lev = get_distance("levenshtein")
        rng = np.random.default_rng(1)
        same, different = [], []
        for _ in range(200):
            i, j = rng.integers(0, len(dataset), 2)
            if i == j:
                continue
            d = lev.one(dataset[i], dataset[j])
            if dataset.labels[i] == dataset.labels[j]:
                same.append(d)
            else:
                different.append(d)
        assert np.mean(same) < np.mean(different)


class TestQuerySampling:
    def test_without_replacement(self):
        dataset = make_uniform(n=50)
        queries = sample_database_queries(dataset, 50)
        assert sorted(queries) == list(range(50))

    def test_with_replacement_when_oversampled(self):
        dataset = make_uniform(n=10)
        queries = sample_database_queries(dataset, 25)
        assert len(queries) == 25
        assert all(0 <= q < 10 for q in queries)

    def test_deterministic(self):
        dataset = make_uniform(n=100)
        assert sample_database_queries(dataset, 10, seed=3) == sample_database_queries(
            dataset, 10, seed=3
        )

    def test_empty_dataset_rejected(self):
        from repro.data import VectorDataset

        with pytest.raises(ValueError):
            sample_database_queries(VectorDataset(np.empty((0, 3))), 5)
