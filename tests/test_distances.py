"""Tests for the metric distance functions."""

import numpy as np
import pytest

from repro.metric import (
    ChebyshevDistance,
    CosineAngularDistance,
    EuclideanDistance,
    LevenshteinDistance,
    ManhattanDistance,
    MetricViolation,
    MinkowskiDistance,
    QuadraticFormDistance,
    WeightedEuclideanDistance,
    check_metric_axioms,
    get_distance,
)

VECTOR_METRICS = [
    EuclideanDistance(),
    WeightedEuclideanDistance(np.linspace(0.5, 2.0, 6)),
    ManhattanDistance(),
    ChebyshevDistance(),
    MinkowskiDistance(3),
    QuadraticFormDistance.color_histogram(6),
    CosineAngularDistance(),
]


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(3).random((40, 6)) + 0.1


class TestKnownValues:
    def test_euclidean(self):
        assert EuclideanDistance().one([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_manhattan(self):
        assert ManhattanDistance().one([0, 0], [3, 4]) == pytest.approx(7.0)

    def test_chebyshev(self):
        assert ChebyshevDistance().one([0, 0], [3, 4]) == pytest.approx(4.0)

    def test_minkowski_p1_equals_manhattan(self):
        a, b = [0.2, 0.7, 0.1], [0.9, 0.3, 0.4]
        assert MinkowskiDistance(1).one(a, b) == pytest.approx(
            ManhattanDistance().one(a, b)
        )

    def test_minkowski_p2_equals_euclidean(self):
        a, b = [0.2, 0.7, 0.1], [0.9, 0.3, 0.4]
        assert MinkowskiDistance(2).one(a, b) == pytest.approx(
            EuclideanDistance().one(a, b)
        )

    def test_minkowski_requires_p_at_least_one(self):
        with pytest.raises(ValueError):
            MinkowskiDistance(0.5)

    def test_weighted_euclidean_identity_weights(self):
        a, b = np.array([0.1, 0.9]), np.array([0.4, 0.5])
        weighted = WeightedEuclideanDistance([1.0, 1.0])
        assert weighted.one(a, b) == pytest.approx(EuclideanDistance().one(a, b))

    def test_weighted_euclidean_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            WeightedEuclideanDistance([1.0, -1.0])

    def test_quadratic_form_identity_matrix_is_euclidean(self):
        quadratic = QuadraticFormDistance(np.eye(4))
        a, b = np.array([0.1, 0.2, 0.3, 0.4]), np.array([0.5, 0.1, 0.9, 0.2])
        assert quadratic.one(a, b) == pytest.approx(EuclideanDistance().one(a, b))

    def test_quadratic_form_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            QuadraticFormDistance(np.array([[1.0, 0.5], [0.0, 1.0]]))

    def test_quadratic_form_rejects_indefinite(self):
        with pytest.raises(ValueError):
            QuadraticFormDistance(np.array([[1.0, 0.0], [0.0, -1.0]]))

    def test_cosine_angular_orthogonal(self):
        angular = CosineAngularDistance()
        assert angular.one([1, 0], [0, 1]) == pytest.approx(np.pi / 2)

    def test_levenshtein_classic(self):
        lev = LevenshteinDistance()
        assert lev.one("kitten", "sitting") == 3.0
        assert lev.one("", "abc") == 3.0
        assert lev.one("abc", "abc") == 0.0


class TestBatchConsistency:
    @pytest.mark.parametrize("metric", VECTOR_METRICS, ids=lambda m: m.name)
    def test_many_matches_one(self, metric, points):
        q = points[0]
        batch = metric.many(points, q)
        singles = [metric.one(p, q) for p in points]
        assert np.allclose(batch, singles, atol=1e-12)

    def test_generic_many_fallback(self):
        lev = LevenshteinDistance()
        batch = lev.many(["abc", "abd", "xyz"], "abc")
        assert list(batch) == [0.0, 1.0, 3.0]


class TestMetricAxioms:
    @pytest.mark.parametrize("metric", VECTOR_METRICS, ids=lambda m: m.name)
    def test_vector_metrics_satisfy_axioms(self, metric, points):
        check_metric_axioms(metric, list(points), max_triples=150)

    def test_levenshtein_satisfies_axioms(self):
        rng = np.random.default_rng(5)
        words = [
            "".join(rng.choice(list("abcd"), size=rng.integers(1, 7)))
            for _ in range(25)
        ]
        check_metric_axioms(LevenshteinDistance(), words, max_triples=200)

    def test_violation_detected_for_non_metric(self):
        class Squared(EuclideanDistance):
            def one(self, a, b):
                return super().one(a, b) ** 2

        points = [np.array([0.0]), np.array([1.0]), np.array([2.0])]
        with pytest.raises(MetricViolation):
            check_metric_axioms(Squared(), points)

    def test_asymmetry_detected(self):
        class Lopsided(EuclideanDistance):
            def one(self, a, b):
                base = super().one(a, b)
                return base * 1.5 if a[0] > b[0] else base

        points = [np.array([0.0, 0.0]), np.array([1.0, 1.0])]
        with pytest.raises(MetricViolation):
            check_metric_axioms(Lopsided(), points)


class TestMbrMindist:
    @pytest.mark.parametrize(
        "metric",
        [m for m in VECTOR_METRICS if m.supports_mbr()],
        ids=lambda m: m.name,
    )
    def test_mindist_is_lower_bound(self, metric, points):
        rng = np.random.default_rng(11)
        box_points = points[:15]
        lo, hi = box_points.min(axis=0), box_points.max(axis=0)
        for _ in range(20):
            q = rng.random(points.shape[1]) * 1.5
            bound = metric.mbr_mindist(lo, hi, q)
            for p in box_points:
                assert bound <= metric.one(p, q) + 1e-9

    def test_mindist_zero_inside_box(self):
        metric = EuclideanDistance()
        lo, hi = np.zeros(3), np.ones(3)
        assert metric.mbr_mindist(lo, hi, np.array([0.5, 0.5, 0.5])) == 0.0

    def test_mindist_many_matches_single(self, points):
        metric = EuclideanDistance()
        lo, hi = points[:10].min(axis=0), points[:10].max(axis=0)
        queries = points[10:20]
        batch = metric.mbr_mindist_many(lo, hi, queries)
        singles = [metric.mbr_mindist(lo, hi, q) for q in queries]
        assert np.allclose(batch, singles)

    def test_cosine_has_no_mbr(self):
        assert not CosineAngularDistance().supports_mbr()
        with pytest.raises(NotImplementedError):
            CosineAngularDistance().mbr_mindist(
                np.zeros(2), np.ones(2), np.ones(2)
            )


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_distance("euclidean").name == "euclidean"
        assert get_distance("levenshtein").name == "levenshtein"

    def test_instance_passthrough(self):
        metric = ManhattanDistance()
        assert get_distance(metric) is metric

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown distance"):
            get_distance("hamming")
