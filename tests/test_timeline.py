"""Tests for windowed timeline telemetry, anomaly rules, the profiler
and the live dashboard."""

import gzip
import json

import numpy as np
import pytest

from repro.core.database import Database
from repro.core.types import knn_query
from repro.obs import (
    AnomalyEngine,
    AnomalyRule,
    Observer,
    TimelineCollector,
    deterministic_series,
    folded_lines,
    load_anomaly_engine,
    load_anomaly_spec,
    profile_trace,
    read_timeline,
    render_dashboard,
    render_profile,
    render_timeline,
    sparkline,
    write_folded,
)
from repro.obs.anomaly import series_value
from repro.obs.metrics import MetricsRegistry
from repro.parallel.executor import ParallelDatabase

ALL_ACCESS_METHODS = ["scan", "xtree", "rstar", "mtree", "vafile"]
ALL_ENGINES = ["reference", "vectorized", "batched"]


@pytest.fixture(scope="module")
def vectors():
    return np.random.default_rng(11).random((600, 8))


def _answers_as_tuples(results):
    return [[(a.index, a.distance) for a in result] for result in results]


def _run_blocks(database, vectors, n_queries=12, block=4):
    queries = [vectors[i] for i in range(n_queries)]
    return database.run_in_blocks(
        queries,
        knn_query(5),
        block_size=block,
        db_indices=list(range(n_queries)),
    )


def _timeline_run(vectors, tmp_path, name, access="xtree", window_ticks=1):
    observer = Observer(trace=True)
    timeline = observer.attach_timeline(
        TimelineCollector(observer.metrics, window_ticks=window_ticks)
    )
    database = Database(vectors, access=access, observer=observer)
    run = _run_blocks(database, vectors)
    timeline.flush()
    path = tmp_path / name
    timeline.export_jsonl(str(path))
    return path, run, timeline


def _parallel_timeline_run(vectors, tmp_path, backend):
    observer = Observer(trace=True, trace_capacity=65_536)
    timeline = observer.attach_timeline(
        TimelineCollector(observer.metrics, window_ticks=1)
    )
    with ParallelDatabase(
        vectors, n_servers=2, access="scan", observer=observer
    ) as cluster:
        queries = [vectors[i] for i in range(6)]
        run = cluster.multiple_similarity_query(
            queries, knn_query(3), db_indices=list(range(6)), backend=backend
        )
    timeline.flush()
    path = tmp_path / f"timeline-{backend}.jsonl"
    timeline.export_jsonl(str(path))
    return path, run, timeline


class TestTimelineDeterminism:
    """Same seed + plan => byte-identical timeline JSONL."""

    def test_repeated_runs_export_identical_bytes(self, vectors, tmp_path):
        first, _, _ = _timeline_run(vectors, tmp_path, "a.jsonl")
        second, _, _ = _timeline_run(vectors, tmp_path, "b.jsonl")
        a, b = first.read_bytes(), second.read_bytes()
        assert a and a == b

    def test_model_and_process_backends_export_identical_bytes(
        self, vectors, tmp_path
    ):
        # The acceptance bar: the process backend ships per-block
        # counter deltas from its workers over the picklable path while
        # the model backend snapshots in-process, and both must land on
        # the same bytes.
        model_path, model_run, _ = _parallel_timeline_run(
            vectors, tmp_path, "model"
        )
        process_path, process_run, _ = _parallel_timeline_run(
            vectors, tmp_path, "process"
        )
        assert _answers_as_tuples(model_run.answers) == _answers_as_tuples(
            process_run.answers
        )
        model_bytes = model_path.read_bytes()
        assert model_bytes and model_bytes == process_path.read_bytes()

    def test_parallel_windows_carry_per_server_cost_and_skew(
        self, vectors, tmp_path
    ):
        path, _, timeline = _parallel_timeline_run(vectors, tmp_path, "model")
        windows = read_timeline(str(path))
        assert windows
        served = [w for w in windows if "servers" in w]
        assert served, "no window carries per-server cost deltas"
        for window in served:
            assert set(window["servers"]) <= {"0", "1"}
            if "server_skew" in window["rates"]:
                assert window["rates"]["server_skew"] >= 1.0

    def test_gzip_export_is_deterministic_and_round_trips(
        self, vectors, tmp_path
    ):
        plain, _, timeline = _timeline_run(vectors, tmp_path, "t.jsonl")
        gz_path = tmp_path / "t.jsonl.gz"
        timeline.export_jsonl(str(gz_path))
        again = tmp_path / "t2.jsonl.gz"
        timeline.export_jsonl(str(again))
        assert gz_path.read_bytes() == again.read_bytes()
        assert gzip.decompress(gz_path.read_bytes()) == plain.read_bytes()
        assert read_timeline(str(gz_path)) == read_timeline(str(plain))

    def test_exported_records_have_sorted_keys(self, vectors, tmp_path):
        path, _, _ = _timeline_run(vectors, tmp_path, "sorted.jsonl")
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert list(record) == sorted(record)


class TestTimelineEquivalence:
    """A timeline-collecting observer never changes answers or counters."""

    @pytest.mark.parametrize("access", ALL_ACCESS_METHODS)
    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_identical_across_methods_and_engines(
        self, vectors, access, engine
    ):
        plain = Database(vectors, access=access, engine=engine)
        expected = _answers_as_tuples(_run_blocks(plain, vectors))
        observer = Observer(trace=True)
        timeline = observer.attach_timeline(
            TimelineCollector(observer.metrics, window_ticks=2)
        )
        traced = Database(vectors, access=access, engine=engine, observer=observer)
        observed = _answers_as_tuples(_run_blocks(traced, vectors))
        assert observed == expected
        assert traced.counters.as_dict() == plain.counters.as_dict()
        timeline.flush()
        assert len(timeline) > 0


class TestTimelineWindows:
    def _collector(self, window_ticks=2, capacity=256, engine=None):
        registry = MetricsRegistry()
        return registry, TimelineCollector(
            registry,
            window_ticks=window_ticks,
            capacity=capacity,
            anomaly_engine=engine,
        )

    def test_windows_close_on_tick_boundaries(self):
        registry, timeline = self._collector(window_ticks=2)
        registry.inc("events.service.submit", 3)
        timeline.advance()
        assert len(timeline) == 0  # still inside the first window
        registry.inc("events.service.submit", 2)
        timeline.advance()
        assert len(timeline) == 1
        window = timeline.windows[0]
        assert window["ticks"] == 2
        assert window["counters"]["events.service.submit"] == 5
        # The next window sees only what happened after the boundary.
        registry.inc("events.service.submit", 1)
        timeline.advance()
        timeline.advance()
        assert timeline.windows[1]["counters"] == {
            "events.service.submit": 1
        }

    def test_flush_closes_a_partial_window_once(self):
        registry, timeline = self._collector(window_ticks=10)
        registry.inc("events.service.submit")
        timeline.advance()
        timeline.flush()
        assert len(timeline) == 1
        assert timeline.windows[0]["ticks"] == 1
        timeline.flush()  # nothing new: no empty second window
        assert len(timeline) == 1

    def test_record_block_folds_cost_and_rates(self):
        registry, timeline = self._collector(window_ticks=2)
        timeline.record_block(
            {
                "random_page_reads": 3,
                "sequential_page_reads": 1,
                "queries_completed": 8,
                "distance_calculations": 60,
                "avoided_calculations": 40,
                "avoidance_tries": 100,
                "buffer_hits": 4,
            }
        )
        timeline.advance()
        timeline.advance()
        window = timeline.windows[0]
        assert window["cost"]["queries_completed"] == 8
        rates = window["rates"]
        assert rates["pages_per_tick"] == pytest.approx(2.0)
        assert rates["queries_per_tick"] == pytest.approx(4.0)
        assert rates["sharing_factor"] == pytest.approx(2.0)
        assert rates["avoidance_hit_rate"] == pytest.approx(0.4)
        assert rates["prune_effectiveness"] == pytest.approx(0.4)
        assert rates["buffer_hit_rate"] == pytest.approx(0.5)

    def test_per_server_deltas_feed_the_skew_rate(self):
        registry, timeline = self._collector(window_ticks=1)
        timeline.record_block({"random_page_reads": 9}, server_id=0)
        timeline.record_block({"random_page_reads": 3}, server_id=1)
        timeline.advance()
        window = timeline.windows[0]
        assert window["servers"] == {
            "0": {"random_page_reads": 9},
            "1": {"random_page_reads": 3},
        }
        assert window["rates"]["server_skew"] == pytest.approx(1.5)

    def test_histogram_deltas_become_observations(self):
        registry, timeline = self._collector(window_ticks=1)
        registry.observe("service.batch_occupancy", 4.0)
        registry.observe("service.batch_occupancy", 2.0)
        timeline.advance()
        registry.observe("service.batch_occupancy", 1.0)
        timeline.advance()
        first, second = timeline.windows
        assert first["observations"]["service.batch_occupancy"] == {
            "count": 2,
            "sum": 6.0,
        }
        assert second["observations"]["service.batch_occupancy"] == {
            "count": 1,
            "sum": 1.0,
        }

    def test_ring_capacity_drops_oldest_and_counts(self):
        registry, timeline = self._collector(window_ticks=1, capacity=3)
        for i in range(5):
            registry.inc("events.service.submit", i + 1)
            timeline.advance()
        assert len(timeline) == 3
        assert timeline.n_closed == 5
        assert timeline.n_dropped == 2
        assert [w["window"] for w in timeline.windows] == [2, 3, 4]

    def test_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            TimelineCollector(registry, window_ticks=0)
        with pytest.raises(ValueError):
            TimelineCollector(registry, capacity=0)

    def test_deterministic_series_filter(self):
        assert deterministic_series("events.service.submit")
        assert deterministic_series("cost.distance_calculations")
        assert deterministic_series("fault.injected")
        assert deterministic_series("service.tickets.degraded")
        # Wall-clock and worker-side series stay out of the export.
        assert not deterministic_series("phase.page.process.seconds")
        assert not deterministic_series("service.wall_seconds")
        assert not deterministic_series("events.page.read")
        assert not deterministic_series("index.node_visits")
        assert not deterministic_series("prefilter.pruned")
        assert not deterministic_series("planner.calibration_drift")

    def test_filtered_window_strips_nondeterministic_series(self):
        registry, timeline = self._collector(window_ticks=1)
        registry.inc("events.service.submit")
        registry.inc("events.page.read")
        registry.observe("phase.page.process.seconds", 0.5)
        timeline.advance()
        raw = timeline.windows[0]
        assert "events.page.read" in raw["counters"]
        filtered = timeline.filtered_window(raw)
        assert "events.page.read" not in filtered["counters"]
        assert "events.service.submit" in filtered["counters"]
        assert filtered["observations"] == {}

    def test_render_timeline_tabulates_and_sparklines(self, vectors, tmp_path):
        path, _, _ = _timeline_run(vectors, tmp_path, "render.jsonl")
        text = render_timeline(read_timeline(str(path)))
        assert "timeline" in text
        assert "pages/tick" in text
        assert "anomaly firings" in text
        assert render_timeline([]).endswith("(no windows)")


class TestAnomalyRules:
    def _window(self, **overrides):
        window = {
            "window": 3,
            "tick_end": 12,
            "ticks": 4,
            "counters": {"service.tickets.degraded": 2},
            "gauges": {"service.degraded_sessions": 1.0},
            "cost": {"distance_calculations": 9000},
            "rates": {"pages_per_tick": 5.0},
            "observations": {
                "service.batch_occupancy": {"count": 4, "sum": 10.0}
            },
        }
        window.update(overrides)
        return window

    def test_series_value_sections_and_accessors(self):
        window = self._window()
        assert series_value(window, "counters.service.tickets.degraded") == 2
        assert series_value(window, "rates.pages_per_tick") == 5.0
        assert series_value(window, "cost.distance_calculations") == 9000
        assert series_value(
            window, "observations.service.batch_occupancy.count"
        ) == 4
        assert series_value(
            window, "observations.service.batch_occupancy.sum"
        ) == 10.0
        assert series_value(
            window, "observations.service.batch_occupancy"
        ) == pytest.approx(2.5)
        assert series_value(window, "counters.missing") is None
        assert series_value(window, "observations.missing.count") is None

    def test_threshold_rule_fires_and_skips_no_data(self):
        rule = AnomalyRule(
            name="degraded",
            kind="threshold",
            series="counters.service.tickets.degraded",
            op=">",
            value=0,
            replan=True,
        )
        engine = AnomalyEngine([rule])
        firings = engine.evaluate(self._window())
        assert len(firings) == 1
        assert firings[0]["rule"] == "degraded"
        assert firings[0]["value"] == 2
        assert firings[0]["replan"] is True
        # Absent series skips; zero value compares false.
        assert engine.evaluate(self._window(counters={})) == []
        assert (
            engine.evaluate(
                self._window(counters={"service.tickets.degraded": 0})
            )
            == []
        )

    def test_threshold_firing_increments_metrics_and_emits_event(self):
        observer = Observer(trace=True)
        rule = AnomalyRule(
            name="degraded",
            kind="threshold",
            series="counters.service.tickets.degraded",
        )
        AnomalyEngine([rule]).evaluate(self._window(), observer)
        counters = observer.metrics.snapshot()["counters"]
        assert counters["anomaly.fired"] == 1
        assert counters["anomaly.fired.degraded"] == 1
        events = [
            r
            for r in observer.tracer.records()
            if r.get("name") == "anomaly.fired"
        ]
        assert events and events[0]["attrs"]["rule"] == "degraded"

    def test_ewma_rule_warms_up_then_fires_on_drift(self):
        rule = AnomalyRule(
            name="drift",
            kind="ewma",
            series="rates.pages_per_tick",
            alpha=0.5,
            tolerance=0.5,
            warmup=2,
        )
        engine = AnomalyEngine([rule])

        def window(rate):
            return self._window(rates={"pages_per_tick": rate})

        # Warmup windows feed the average but never fire, even though
        # the second value is far from the first.
        assert engine.evaluate(window(10.0)) == []
        assert engine.evaluate(window(100.0)) == []
        # Past warmup, a value within tolerance of the EWMA stays quiet.
        assert engine.evaluate(window(55.0)) == []
        # A large jump versus the smoothed average fires.
        fired = engine.evaluate(window(200.0))
        assert len(fired) == 1
        assert fired[0]["kind"] == "ewma"
        assert fired[0]["value"] == 200.0

    def test_ratio_rule_compares_to_baseline_store_entry(self):
        baselines = {
            "quick/xtree/knn": {
                "seconds": 0.5,
                "counters": {"distance_calculations": 1000},
            }
        }
        rule = AnomalyRule(
            name="blowup",
            kind="ratio_to_baseline",
            series="cost.distance_calculations",
            baseline="quick/xtree/knn",
            baseline_field="counters.distance_calculations",
            max_ratio=4.0,
        )
        engine = AnomalyEngine([rule], baselines=baselines)
        fired = engine.evaluate(self._window())  # 9000 / 1000 = 9x
        assert len(fired) == 1
        assert fired[0]["ratio"] == pytest.approx(9.0)
        quiet = self._window(cost={"distance_calculations": 3000})
        assert engine.evaluate(quiet) == []
        # Scale rescales the reference before comparing.
        scaled = AnomalyEngine(
            [
                AnomalyRule(
                    name="b",
                    kind="ratio_to_baseline",
                    series="cost.distance_calculations",
                    baseline="quick/xtree/knn",
                    baseline_field="counters.distance_calculations",
                    max_ratio=4.0,
                    scale=10.0,
                )
            ],
            baselines=baselines,
        )
        assert scaled.evaluate(self._window()) == []
        # Unknown baseline entry: skip, never fire.
        empty = AnomalyEngine([rule], baselines={})
        assert empty.evaluate(self._window()) == []

    def test_rule_validation_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            AnomalyRule(name="x", kind="nope", series="rates.x")
        with pytest.raises(ValueError):
            AnomalyRule(name="x", kind="threshold", series="nosection")
        with pytest.raises(ValueError):
            AnomalyRule(name="x", kind="threshold", series="bogus.x")
        with pytest.raises(ValueError):
            AnomalyRule(name="x", kind="threshold", series="rates.x", op="!=")
        with pytest.raises(ValueError):
            AnomalyRule(name="x", kind="ewma", series="rates.x", alpha=0.0)
        with pytest.raises(ValueError):
            AnomalyRule(name="x", kind="ratio_to_baseline", series="rates.x")
        with pytest.raises(ValueError):
            AnomalyEngine([])
        rule = AnomalyRule(name="dup", kind="threshold", series="rates.x")
        with pytest.raises(ValueError):
            AnomalyEngine([rule, rule])

    def test_op_aliases_resolve(self):
        rule = AnomalyRule(
            name="x", kind="threshold", series="rates.x", op="ge"
        )
        assert rule.op == ">="

    def test_spec_loading_json_yaml_and_unknown_keys(self, tmp_path):
        spec = {
            "baseline_store": "benchmarks/baselines.json",
            "rules": [
                {
                    "name": "degraded",
                    "kind": "threshold",
                    "series": "counters.service.tickets.degraded",
                    "value": 0,
                    "replan": True,
                }
            ],
        }
        rules, store = load_anomaly_spec(spec)
        assert rules[0].replan is True
        assert store == "benchmarks/baselines.json"
        json_path = tmp_path / "anomaly.json"
        json_path.write_text(json.dumps(spec))
        rules, _ = load_anomaly_spec(str(json_path))
        assert rules[0].name == "degraded"
        yaml_path = tmp_path / "anomaly.yml"
        yaml_path.write_text(
            "rules:\n"
            "  - name: storm\n"
            "    kind: threshold\n"
            "    series: counters.fault.injected\n"
            "    op: '>='\n"
            "    value: 8\n"
        )
        rules, store = load_anomaly_spec(str(yaml_path))
        assert store is None
        assert rules[0].op == ">=" and rules[0].value == 8.0
        with pytest.raises(ValueError):
            load_anomaly_spec({"rules": []})
        with pytest.raises(ValueError):
            load_anomaly_spec(
                {
                    "rules": [
                        {
                            "name": "x",
                            "kind": "threshold",
                            "series": "rates.x",
                            "oops": 1,
                        }
                    ]
                }
            )

    def test_repo_ci_spec_loads_with_baselines(self):
        engine = load_anomaly_engine("ci/anomaly.yml")
        names = [rule.name for rule in engine.rules]
        assert "degraded-tickets" in names
        assert any(rule.replan for rule in engine.rules)
        # The spec's baseline store resolved to real entries.
        assert "quick/xtree/knn" in engine.baselines


class TestAnomalyReplanLoop:
    """Firings flow collector -> scheduler.replan -> smaller blocks."""

    def _engine(self):
        return AnomalyEngine(
            [
                AnomalyRule(
                    name="degraded",
                    kind="threshold",
                    series="counters.service.tickets.degraded",
                    replan=True,
                )
            ]
        )

    def test_collector_queues_firings_for_drain(self):
        observer = Observer(trace=False)
        timeline = observer.attach_timeline(
            TimelineCollector(
                observer.metrics, window_ticks=1, anomaly_engine=self._engine()
            )
        )
        observer.metrics.inc("service.tickets.degraded")
        timeline.advance()
        assert timeline.windows[0]["anomalies"][0]["rule"] == "degraded"
        firings = timeline.drain_anomalies()
        assert len(firings) == 1 and firings[0]["replan"] is True
        assert timeline.drain_anomalies() == []  # drained exactly once
        assert list(timeline.anomaly_log)  # dashboard feed keeps a copy

    def test_scheduler_replan_halves_block_target_once_per_batch(
        self, vectors
    ):
        database = Database(vectors, access="scan")
        scheduler = database.serve(block_target=8, max_block=8)
        firing = {"rule": "degraded", "replan": True}
        scheduler.replan(anomalies=[firing, firing])
        assert scheduler.block_target == 4  # one halving per drain batch
        assert scheduler.anomaly_replans == 1
        scheduler.replan(anomalies=[{"rule": "quiet", "replan": False}])
        assert scheduler.block_target == 4
        assert scheduler.anomaly_replans == 1
        for _ in range(5):
            scheduler.replan(anomalies=[firing])
        assert scheduler.block_target == 1  # floors at one, never zero

    def test_crash_faults_fire_the_rule_and_shrink_blocks(self, vectors):
        from repro.faults import FaultPlan

        observer = Observer(trace=False)
        timeline = observer.attach_timeline(
            TimelineCollector(
                observer.metrics, window_ticks=1, anomaly_engine=self._engine()
            )
        )
        database = Database(vectors, access="scan", observer=observer)
        database.inject_faults(
            FaultPlan.from_dict(
                {
                    "seed": 5,
                    "sites": {
                        "server:*": {
                            "kinds": ["server_crash"],
                            "probability": 1.0,
                        }
                    },
                }
            )
        )
        scheduler = database.serve(block_target=4, max_block=4)
        for i in range(8):
            scheduler.submit(vectors[i], knn_query(3))
        scheduler.drain()
        counters = observer.metrics.snapshot()["counters"]
        assert counters.get("anomaly.fired.degraded", 0) >= 1
        assert scheduler.anomaly_replans >= 1
        assert scheduler.block_target < 4
        assert counters.get("service.replan.anomaly", 0) >= 1

    def test_replan_without_fits_or_anomalies_raises(self, vectors):
        database = Database(vectors, access="scan")
        scheduler = database.serve()
        with pytest.raises(ValueError):
            scheduler.replan()


class TestProfiler:
    def _trace(self):
        return [
            {"kind": "span", "span_id": 1, "parent_id": None,
             "name": "block.flush", "dur_s": 1.0},
            {"kind": "span", "span_id": 2, "parent_id": 1,
             "name": "query.drive", "dur_s": 0.6},
            {"kind": "span", "span_id": 3, "parent_id": 2,
             "name": "page.process", "dur_s": 0.25},
            {"kind": "span", "span_id": 4, "parent_id": 2,
             "name": "page.process", "dur_s": 0.25},
            {"kind": "event", "name": "query.admit"},
        ]

    def test_inclusive_and_self_time_aggregation(self):
        result = profile_trace(self._trace())
        stats = {s.name: s for s in result.phases}
        assert result.n_spans == 4
        assert stats["block.flush"].inclusive_s == pytest.approx(1.0)
        assert stats["block.flush"].self_s == pytest.approx(0.4)
        assert stats["query.drive"].self_s == pytest.approx(0.1)
        assert stats["page.process"].self_s == pytest.approx(0.5)
        assert stats["page.process"].count == 2
        # Heaviest self time sorts first.
        assert result.phases[0].name == "page.process"
        assert result.total_s == pytest.approx(1.0)

    def test_folded_stacks_join_root_to_leaf(self):
        result = profile_trace(self._trace())
        assert result.folded["block.flush;query.drive;page.process"] == (
            pytest.approx(0.5)
        )
        lines = folded_lines(result)
        assert "block.flush;query.drive;page.process 500000" in lines
        assert lines == sorted(lines)

    def test_negative_self_time_clamps_to_zero(self):
        records = [
            {"kind": "span", "span_id": 1, "parent_id": None,
             "name": "outer", "dur_s": 0.1},
            {"kind": "span", "span_id": 2, "parent_id": 1,
             "name": "inner", "dur_s": 0.2},  # clock jitter
        ]
        result = profile_trace(records)
        stats = {s.name: s for s in result.phases}
        assert stats["outer"].self_s == 0.0
        assert "outer" not in result.folded  # zero-weight stack dropped

    def test_orphan_parents_are_roots(self):
        records = [
            {"kind": "span", "span_id": 9, "parent_id": 404,
             "name": "worker.phase1", "dur_s": 0.3},
        ]
        result = profile_trace(records)
        assert result.folded == {"worker.phase1": pytest.approx(0.3)}

    def test_write_folded_and_render(self, tmp_path):
        result = profile_trace(self._trace())
        path = tmp_path / "profile.folded"
        assert write_folded(result, str(path)) == len(result.folded)
        for line in path.read_text().splitlines():
            stack, weight = line.rsplit(" ", 1)
            assert stack and int(weight) > 0
        text = render_profile(result, top=2)
        assert "phase profile" in text
        assert "page.process" in text
        assert "... 1 more phases" in text
        assert "no spans" in render_profile(profile_trace([]))

    def test_profile_of_a_real_traced_run(self, vectors):
        observer = Observer(trace=True, trace_capacity=65_536)
        database = Database(vectors, access="xtree", observer=observer)
        _run_blocks(database, vectors)
        result = profile_trace(observer.tracer.records())
        names = {s.name for s in result.phases}
        assert "page.process" in names
        assert result.total_s > 0.0
        # Self time never exceeds inclusive time.
        for stat in result.phases:
            assert stat.self_s <= stat.inclusive_s + 1e-9


class TestDashboard:
    def test_sparkline_shapes_and_padding(self):
        assert sparkline([], width=4) == "    "
        assert len(sparkline([1.0, 2.0, 3.0], width=8)) == 8
        ramp = sparkline([0.0, 1.0, 2.0, 3.0], width=4)
        assert ramp[0] == "▁" and ramp[-1] == "█"
        flat = sparkline([5.0, 5.0], width=2)
        assert len(set(flat)) == 1  # flat series renders mid-height
        assert sparkline([1.0, float("nan")], width=2)[1] == " "
        assert sparkline([1.0], width=0) == ""

    def test_render_dashboard_live_scheduler(self, vectors):
        observer = Observer(trace=False)
        timeline = observer.attach_timeline(
            TimelineCollector(observer.metrics, window_ticks=1)
        )
        database = Database(vectors, access="scan", observer=observer)
        scheduler = database.serve(block_target=2, max_block=4)
        for i in range(6):
            scheduler.submit(vectors[i], knn_query(3))
        scheduler.drain()
        frame = render_dashboard(scheduler, timeline)
        assert "repro top" in frame
        assert "tickets:" in frame and "6 completed" in frame
        assert "pages/tick" in frame
        assert "anomaly feed: (quiet)" in frame

    def test_render_dashboard_without_windows(self, vectors):
        database = Database(vectors, access="scan", observer=Observer())
        scheduler = database.serve()
        frame = render_dashboard(scheduler, None)
        assert "(no closed windows yet)" in frame


class TestTimelineCLI:
    def _serve(self, tmp_path, *extra):
        from repro.cli import main

        timeline = tmp_path / "timeline.jsonl.gz"
        argv = [
            "serve", "--objects", "400", "--clients", "2",
            "--queries-per-client", "4", "--timeline", str(timeline),
            *extra,
        ]
        assert main(argv) == 0
        return timeline

    def test_serve_timeline_deterministic_and_reportable(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        first = self._serve(tmp_path)
        blob = first.read_bytes()
        second = self._serve(tmp_path)  # same path: overwritten in place
        assert blob == second.read_bytes()
        capsys.readouterr()
        assert main(["report", "--timeline", str(second)]) == 0
        out = capsys.readouterr().out
        assert "timeline" in out and "pages/tick" in out

    def test_report_accepts_positional_gz_trace(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace.jsonl.gz"
        assert main(
            ["demo", "--objects", "400", "--queries", "6",
             "--trace", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(["report", str(trace)]) == 0
        assert "trace" in capsys.readouterr().out

    def test_profile_command_writes_speedscope_folded(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace.jsonl"
        assert main(
            ["demo", "--objects", "400", "--queries", "6",
             "--trace", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(["profile", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "phase profile" in out
        folded = tmp_path / "trace.folded"
        assert folded.exists()
        lines = folded.read_text().splitlines()
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            int(weight)  # speedscope's folded format: "stack <int>"
            assert all(frame for frame in stack.split(";"))

    def test_top_renders_frames_without_a_tty(self, capsys):
        from repro.cli import main

        assert main(
            ["top", "--objects", "400", "--clients", "2",
             "--queries-per-client", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "tickets:" in out

    def test_serve_with_anomaly_spec_reports_firings(self, tmp_path, capsys):
        timeline = self._serve(
            tmp_path, "--faults", "ci/chaos-mixed.json",
            "--anomaly", "ci/anomaly.yml",
        )
        out = capsys.readouterr().out
        assert "anomaly rules" in out
        windows = read_timeline(str(timeline))
        assert windows
