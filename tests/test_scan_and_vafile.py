"""Tests for the linear scan and VA-file access methods."""

import numpy as np
import pytest

from repro import Database, knn_query, range_query

from tests.helpers import brute_force_answers


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(41)
    return rng.random((500, 6))


class TestLinearScan:
    def test_knn_matches_brute_force(self, vectors):
        db = Database(vectors, access="scan", block_size=2048)
        answers = db.similarity_query(vectors[3], knn_query(7))
        expected = brute_force_answers(vectors, vectors[3], knn_query(7))
        assert sorted(a.distance for a in answers) == pytest.approx(
            [d for _, d in expected]
        )

    def test_range_matches_brute_force(self, vectors):
        db = Database(vectors, access="scan", block_size=2048)
        answers = db.similarity_query(vectors[3], range_query(0.4))
        expected = brute_force_answers(vectors, vectors[3], range_query(0.4))
        assert {a.index for a in answers} == {i for i, _ in expected}

    def test_single_query_reads_every_page_sequentially(self, vectors):
        db = Database(vectors, access="scan", block_size=2048, buffer_fraction=0.0)
        with db.measure() as run:
            db.similarity_query(vectors[0], knn_query(1))
        assert run.counters.sequential_page_reads == len(
            db.access_method.data_pages()
        )
        assert run.counters.random_page_reads == 0

    def test_single_query_computes_every_distance(self, vectors):
        db = Database(vectors, access="scan", block_size=2048, buffer_fraction=0.0)
        with db.measure() as run:
            db.similarity_query(vectors[0], knn_query(1))
        assert run.counters.distance_calculations == len(vectors)

    def test_multiple_query_reads_each_page_once(self, vectors):
        # The Sec. 5.1 scan result: I/O of a block of m queries equals
        # the I/O of one query.
        db = Database(vectors, access="scan", block_size=2048, buffer_fraction=0.0)
        m = 20
        with db.measure() as run:
            db.multiple_similarity_query([vectors[i] for i in range(m)], knn_query(5))
        assert run.counters.page_reads == len(db.access_method.data_pages())

    def test_stream_is_physical_order(self, vectors):
        db = Database(vectors, access="scan", block_size=2048)
        stream = db.access_method.page_stream(vectors[0])
        ids = [page.page_id for _, page in stream.drain()]
        assert ids == sorted(ids)

    def test_page_lower_bounds_zero(self, vectors):
        db = Database(vectors, access="scan", block_size=2048)
        page = db.access_method.data_pages()[0]
        bounds = db.access_method.page_lower_bounds(page, vectors[:4], 0.0, None)
        assert np.all(bounds == 0.0)


class TestVAFile:
    @pytest.fixture(scope="class")
    def db(self, vectors):
        return Database(vectors, access="vafile", block_size=2048)

    def test_knn_matches_brute_force(self, db, vectors):
        for qi in (0, 77, 311):
            answers = db.similarity_query(vectors[qi], knn_query(5))
            expected = brute_force_answers(vectors, vectors[qi], knn_query(5))
            assert sorted(a.distance for a in answers) == pytest.approx(
                [d for _, d in expected]
            )

    def test_range_matches_brute_force(self, db, vectors):
        answers = db.similarity_query(vectors[9], range_query(0.3))
        expected = brute_force_answers(vectors, vectors[9], range_query(0.3))
        assert {a.index for a in answers} == {i for i, _ in expected}

    def test_bounds_bracket_true_distance(self, db, vectors):
        vafile = db.access_method
        q = np.random.default_rng(5).random(vectors.shape[1])
        lower = vafile.lower_bounds(q)
        upper = vafile.upper_bounds(q)
        true = np.sqrt(((vectors - q) ** 2).sum(axis=1))
        assert np.all(lower <= true + 1e-9)
        assert np.all(true <= upper + 1e-9)

    def test_more_bits_tighter_bounds(self, vectors):
        coarse = Database(
            vectors, access="vafile", index_options={"bits_per_dim": 2}
        ).access_method
        fine = Database(
            vectors, access="vafile", index_options={"bits_per_dim": 8}
        ).access_method
        q = np.random.default_rng(6).random(vectors.shape[1])
        assert fine.lower_bounds(q).sum() >= coarse.lower_bounds(q).sum()
        assert fine.upper_bounds(q).sum() <= coarse.upper_bounds(q).sum()

    def test_approximation_scan_charged(self, db, vectors):
        db.cold()
        with db.measure() as run:
            db.similarity_query(vectors[0], knn_query(3))
        # The approximation pages are read on every (cold) query.
        assert run.counters.page_reads >= len(db.access_method.approximation_pages)

    def test_knn_skips_some_vector_pages(self, vectors):
        # With enough bits the VA-file must prune at least one full page.
        db = Database(
            vectors,
            access="vafile",
            block_size=2048,
            buffer_fraction=0.0,
            index_options={"bits_per_dim": 8},
        )
        with db.measure() as run:
            db.similarity_query(vectors[0], knn_query(1))
        n_vector_pages = len(db.access_method.vector_pages)
        n_approx = len(db.access_method.approximation_pages)
        assert run.counters.page_reads < n_vector_pages + n_approx

    def test_rejects_bad_bits(self, vectors):
        with pytest.raises(ValueError):
            Database(vectors, access="vafile", index_options={"bits_per_dim": 0})

    def test_rejects_non_euclidean(self, vectors):
        with pytest.raises(ValueError):
            Database(vectors, access="vafile", metric="manhattan")

    def test_cell_interval_cache_is_read_only(self, db):
        vafile = db.access_method
        assert not vafile._cell_lo.flags.writeable
        assert not vafile._cell_hi.flags.writeable
        assert np.all(vafile._cell_hi - vafile._cell_lo > 0)

    def test_batched_bounds_match_stacked_single_queries(self, db, vectors):
        # The one-pass (m, n) kernels must agree elementwise with the
        # single-query forms they replace.
        vafile = db.access_method
        queries = np.random.default_rng(7).random((5, vectors.shape[1]))
        lower_many = vafile.lower_bounds_many(queries)
        upper_many = vafile.upper_bounds_many(queries)
        assert lower_many.shape == (5, len(vectors))
        for row, q in enumerate(queries):
            assert np.array_equal(lower_many[row], vafile.lower_bounds(q))
            assert np.array_equal(upper_many[row], vafile.upper_bounds(q))

    def test_batched_bounds_accept_a_single_query(self, db, vectors):
        vafile = db.access_method
        q = np.random.default_rng(8).random(vectors.shape[1])
        assert np.array_equal(
            vafile.lower_bounds_many(q)[0], vafile.lower_bounds(q)
        )

    def test_vectorized_bounds_keep_counter_identity(self, vectors):
        # Regression pin for the cached-cell rewrite of the bound hot
        # loop: the vectorisation is an implementation detail, so a
        # block of queries must charge exactly the same counters (and
        # return the same answers) as the historical per-call form,
        # whose counts are fixed here as literals derived from the
        # access method's contract: one mindist evaluation per object
        # per drive, every approximation page re-scanned per drive.
        db = Database(
            vectors, access="vafile", block_size=2048, buffer_fraction=0.0
        )
        queries = [vectors[i] for i in (3, 44, 215)]
        with db.measure() as run:
            answers = db.run_in_blocks(
                queries, knn_query(4), block_size=3, db_indices=[3, 44, 215]
            )
        assert run.counters.mindist_evaluations == len(vectors) * len(queries)
        for q, got in zip(queries, answers):
            expected = brute_force_answers(vectors, q, knn_query(4))
            assert sorted(a.distance for a in got) == pytest.approx(
                [d for _, d in expected]
            )
