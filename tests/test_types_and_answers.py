"""Tests for query types (Defs. 1-3) and answer lists."""

import math

import pytest

from repro.core.answers import Answer, AnswerList
from repro.core.types import (
    KIND_BOUNDED_KNN,
    KIND_KNN,
    KIND_RANGE,
    QueryType,
    bounded_knn_query,
    knn_query,
    range_query,
)


class TestQueryType:
    def test_range_query_components(self):
        qtype = range_query(0.5)
        assert qtype.range == 0.5
        assert math.isinf(qtype.cardinality)
        assert qtype.kind == KIND_RANGE
        assert not qtype.adapts_radius

    def test_knn_query_components(self):
        qtype = knn_query(10)
        assert math.isinf(qtype.range)
        assert qtype.k == 10
        assert qtype.kind == KIND_KNN
        assert qtype.adapts_radius

    def test_bounded_knn_components(self):
        qtype = bounded_knn_query(5, 0.3)
        assert qtype.range == 0.3
        assert qtype.k == 5
        assert qtype.kind == KIND_BOUNDED_KNN
        assert qtype.adapts_radius

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            QueryType(range=1.0, kind="nearest")

    def test_negative_range(self):
        with pytest.raises(ValueError):
            range_query(-0.1)

    def test_zero_range_allowed(self):
        assert range_query(0.0).range == 0.0

    def test_non_integer_cardinality(self):
        with pytest.raises(ValueError):
            QueryType(cardinality=2.5, kind=KIND_KNN)

    def test_range_query_needs_finite_range(self):
        with pytest.raises(ValueError):
            QueryType(kind=KIND_RANGE)

    def test_knn_needs_finite_cardinality(self):
        with pytest.raises(ValueError):
            QueryType(kind=KIND_KNN)

    def test_k_property_rejects_unbounded(self):
        with pytest.raises(ValueError):
            _ = range_query(1.0).k

    def test_hashable_and_frozen(self):
        assert hash(knn_query(3)) == hash(knn_query(3))
        with pytest.raises(AttributeError):
            knn_query(3).cardinality = 4


class TestAnswerListRange:
    def test_accepts_within_range(self):
        answers = AnswerList(range_query(0.5))
        assert answers.offer(1, 0.3)
        assert answers.offer(2, 0.5)  # boundary inclusive (Def. 2)
        assert not answers.offer(3, 0.500001)
        assert len(answers) == 2

    def test_radius_constant(self):
        answers = AnswerList(range_query(0.5))
        answers.offer(1, 0.1)
        assert answers.radius == 0.5

    def test_materialize_sorted(self):
        answers = AnswerList(range_query(1.0))
        answers.offer(3, 0.9)
        answers.offer(1, 0.2)
        answers.offer(2, 0.2)
        result = answers.materialize()
        assert result == [Answer(1, 0.2), Answer(2, 0.2), Answer(3, 0.9)]


class TestAnswerListKnn:
    def test_radius_infinite_until_saturated(self):
        answers = AnswerList(knn_query(3))
        answers.offer(1, 0.5)
        answers.offer(2, 0.7)
        assert math.isinf(answers.radius)
        answers.offer(3, 0.9)
        assert answers.radius == 0.9

    def test_radius_shrinks(self):
        answers = AnswerList(knn_query(2))
        for i, d in enumerate([0.9, 0.8, 0.3, 0.1]):
            answers.offer(i, d)
        assert answers.radius == pytest.approx(0.3)
        assert [a.index for a in answers.materialize()] == [3, 2]

    def test_equal_distance_does_not_displace(self):
        answers = AnswerList(knn_query(1))
        answers.offer(1, 0.5)
        assert not answers.offer(2, 0.5)
        assert answers.materialize() == [Answer(1, 0.5)]

    def test_saturation_flag(self):
        answers = AnswerList(knn_query(2))
        answers.offer(1, 0.1)
        assert not answers.is_saturated
        answers.offer(2, 0.2)
        assert answers.is_saturated

    def test_offer_many_order(self):
        answers = AnswerList(knn_query(2))
        answers.offer_many([5, 6, 7], [0.3, 0.1, 0.2])
        assert [a.index for a in answers.materialize()] == [6, 7]


class TestAnswerListBoundedKnn:
    def test_both_conditions_enforced(self):
        answers = AnswerList(bounded_knn_query(2, 0.4))
        answers.offer(1, 0.5)  # outside range
        answers.offer(2, 0.3)
        answers.offer(3, 0.2)
        answers.offer(4, 0.1)
        result = answers.materialize()
        assert [a.index for a in result] == [4, 3]

    def test_radius_is_min_of_range_and_kth(self):
        answers = AnswerList(bounded_knn_query(2, 0.4))
        assert answers.radius == 0.4
        answers.offer(1, 0.1)
        answers.offer(2, 0.2)
        assert answers.radius == pytest.approx(0.2)
