"""Tests for the X-tree access method."""

import numpy as np
import pytest

from repro import Database, knn_query, range_query
from repro.costmodel import Counters
from repro.data import VectorDataset
from repro.index.xtree import XTree
from repro.metric import MetricSpace
from repro.storage import SimulatedDisk

from tests.helpers import brute_force_answers


def build_xtree(vectors, bulk_load=True, block_size=2048, **kwargs):
    counters = Counters()
    space = MetricSpace("euclidean", counters)
    disk = SimulatedDisk(counters, block_size=block_size)
    dataset = VectorDataset(vectors)
    tree = XTree(dataset, space, disk, bulk_load=bulk_load, **kwargs)
    return tree, dataset, space, disk


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(21)
    centers = rng.random((6, 5))
    return np.clip(
        centers[rng.integers(0, 6, 600)] + rng.standard_normal((600, 5)) * 0.04,
        0,
        1,
    )


class TestStructure:
    @pytest.mark.parametrize("bulk_load", [True, False])
    def test_all_objects_stored_exactly_once(self, vectors, bulk_load):
        tree, *_ = build_xtree(vectors, bulk_load=bulk_load)
        stored = sorted(
            int(i) for page in tree.data_pages() for i in page.indices
        )
        assert stored == list(range(len(vectors)))

    @pytest.mark.parametrize("bulk_load", [True, False])
    def test_leaf_mbrs_contain_their_points(self, vectors, bulk_load):
        tree, dataset, *_ = build_xtree(vectors, bulk_load=bulk_load)
        for node in tree.iter_nodes():
            if node.is_leaf:
                for point in dataset.batch(node.page.indices):
                    assert node.mbr.contains_point(point)

    @pytest.mark.parametrize("bulk_load", [True, False])
    def test_directory_mbrs_contain_children(self, vectors, bulk_load):
        tree, *_ = build_xtree(vectors, bulk_load=bulk_load)
        for node in tree.iter_nodes():
            if not node.is_leaf:
                for child in node.children:
                    assert np.all(node.mbr.lo <= child.mbr.lo + 1e-12)
                    assert np.all(child.mbr.hi <= node.mbr.hi + 1e-12)

    def test_leaf_capacity_respected(self, vectors):
        tree, *_ = build_xtree(vectors, bulk_load=False)
        for page in tree.data_pages():
            assert page.n_objects <= tree.leaf_capacity

    def test_height_consistent(self, vectors):
        tree, *_ = build_xtree(vectors)
        assert tree.height() >= 2  # 600 points never fit one small page

    def test_empty_dataset(self):
        tree, *_ = build_xtree(np.empty((0, 4)))
        assert tree.root is None
        assert tree.data_pages() == []

    def test_single_object(self):
        tree, *_ = build_xtree(np.array([[0.5, 0.5]]), bulk_load=False)
        assert tree.height() == 1
        assert tree.data_pages()[0].n_objects == 1

    def test_requires_vector_dataset(self):
        counters = Counters()
        space = MetricSpace("euclidean", counters)
        disk = SimulatedDisk(counters)
        from repro.data import GenericDataset

        with pytest.raises(TypeError):
            XTree(GenericDataset(["a", "b"]), space, disk)

    def test_requires_mbr_capable_metric(self):
        counters = Counters()
        space = MetricSpace("cosine_angular", counters)
        disk = SimulatedDisk(counters)
        with pytest.raises(ValueError, match="MBR"):
            XTree(VectorDataset(np.random.random((10, 3))), space, disk)

    def test_summary_fields(self, vectors):
        tree, *_ = build_xtree(vectors)
        summary = tree.summary()
        assert summary["name"] == "xtree"
        assert summary["pages"] == len(tree.data_pages())


class TestSupernodes:
    def test_supernode_created_on_overlapping_directory(self):
        # Points on a diagonal line in 8-d: every median split of the
        # *directory* overlaps heavily, which must trigger supernodes
        # rather than degenerate splits.
        rng = np.random.default_rng(8)
        base = rng.random(2000)
        points = np.stack([base + rng.standard_normal(2000) * 0.001] * 8, axis=1)
        tree, *_ = build_xtree(points, bulk_load=False, block_size=512)
        # Either a clean overlap-free split always existed, or supernodes
        # appeared; in both cases queries must stay correct (checked in
        # TestQueries); here we assert the accounting is consistent.
        supernode_pages = [
            node.page
            for node in tree.iter_nodes()
            if not node.is_leaf and node.page.n_blocks > 1
        ]
        assert len(supernode_pages) == tree.n_supernodes

    def test_supernode_capacity_grows(self, vectors):
        tree, *_ = build_xtree(vectors, bulk_load=False, block_size=1024)
        for node in tree.iter_nodes():
            if not node.is_leaf:
                assert len(node.children) <= tree.dir_capacity * node.page.n_blocks


class TestQueries:
    @pytest.mark.parametrize("bulk_load", [True, False])
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_knn_matches_brute_force(self, vectors, bulk_load, k):
        db = Database(
            vectors,
            access="xtree",
            block_size=2048,
            index_options={"bulk_load": bulk_load},
        )
        for qi in (0, 99, 311):
            answers = db.similarity_query(vectors[qi], knn_query(k))
            expected = brute_force_answers(vectors, vectors[qi], knn_query(k))
            assert sorted(a.distance for a in answers) == pytest.approx(
                [d for _, d in expected]
            )

    @pytest.mark.parametrize("eps", [0.01, 0.1, 0.5])
    def test_range_matches_brute_force(self, vectors, eps):
        db = Database(vectors, access="xtree", block_size=2048)
        for qi in (5, 123):
            answers = db.similarity_query(vectors[qi], range_query(eps))
            expected = brute_force_answers(vectors, vectors[qi], range_query(eps))
            assert {a.index for a in answers} == {i for i, _ in expected}

    def test_knn_prunes_pages(self, vectors):
        db = Database(vectors, access="xtree", block_size=2048)
        with db.measure() as run:
            db.similarity_query(vectors[0], knn_query(3))
        n_data_pages = len(db.access_method.data_pages())
        data_reads = run.counters.page_reads + run.counters.buffer_hits
        assert data_reads < n_data_pages  # pruning happened

    def test_stream_orders_by_mindist(self, vectors):
        db = Database(vectors, access="xtree", block_size=2048)
        stream = db.access_method.page_stream(vectors[0])
        bounds = [bound for bound, _ in stream.drain()]
        assert bounds == sorted(bounds)

    def test_page_lower_bounds_are_valid(self, vectors):
        db = Database(vectors, access="xtree", block_size=2048)
        tree = db.access_method
        page = tree.data_pages()[0]
        queries = vectors[:10]
        bounds = tree.page_lower_bounds(page, queries, 0.0, None)
        for bound, q in zip(bounds, queries):
            for point in db.dataset.batch(page.indices):
                true = float(np.sqrt(((point - q) ** 2).sum()))
                assert bound <= true + 1e-9


class TestDynamicVsBulk:
    def test_same_answers_both_builds(self, vectors):
        db_bulk = Database(vectors, access="xtree", block_size=2048)
        db_dyn = Database(
            vectors,
            access="xtree",
            block_size=2048,
            index_options={"bulk_load": False},
        )
        for qi in (1, 50, 400):
            a = db_bulk.similarity_query(vectors[qi], knn_query(7))
            b = db_dyn.similarity_query(vectors[qi], knn_query(7))
            assert sorted(x.distance for x in a) == pytest.approx(
                sorted(x.distance for x in b)
            )
