"""Tests for the dataset containers."""

import numpy as np
import pytest

from repro.data import GenericDataset, VectorDataset, as_dataset


class TestVectorDataset:
    def test_basic_access(self):
        dataset = VectorDataset(np.arange(12).reshape(4, 3))
        assert len(dataset) == 4
        assert dataset.dimension == 3
        assert dataset.is_vector
        assert list(dataset[1]) == [3.0, 4.0, 5.0]

    def test_batch_access(self):
        dataset = VectorDataset(np.arange(12).reshape(4, 3))
        batch = dataset.batch(np.array([2, 0]))
        assert batch.shape == (2, 3)
        assert list(batch[0]) == [6.0, 7.0, 8.0]

    def test_vectors_read_only(self):
        dataset = VectorDataset(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            dataset.vectors[0, 0] = 1.0

    def test_copy_decouples_from_input(self):
        raw = np.zeros((3, 2))
        dataset = VectorDataset(raw)
        raw[0, 0] = 7.0
        assert dataset.vectors[0, 0] == 0.0

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            VectorDataset(np.zeros(5))

    def test_label_length_checked(self):
        with pytest.raises(ValueError):
            VectorDataset(np.zeros((3, 2)), labels=[1, 2])

    def test_iteration(self):
        dataset = VectorDataset(np.eye(3))
        rows = list(dataset)
        assert len(rows) == 3
        assert list(rows[2]) == [0.0, 0.0, 1.0]


class TestGenericDataset:
    def test_basic_access(self):
        dataset = GenericDataset(["a", "bb", "ccc"])
        assert len(dataset) == 3
        assert not dataset.is_vector
        assert dataset[2] == "ccc"

    def test_batch(self):
        dataset = GenericDataset(["a", "bb", "ccc"])
        assert dataset.batch(np.array([2, 0])) == ["ccc", "a"]

    def test_label_length_checked(self):
        with pytest.raises(ValueError):
            GenericDataset(["a"], labels=[1, 2])


class TestAsDataset:
    def test_passthrough(self):
        dataset = VectorDataset(np.zeros((2, 2)))
        assert as_dataset(dataset) is dataset

    def test_matrix_becomes_vector_dataset(self):
        dataset = as_dataset(np.zeros((4, 2)))
        assert isinstance(dataset, VectorDataset)

    def test_nested_lists_become_vector_dataset(self):
        dataset = as_dataset([[1.0, 2.0], [3.0, 4.0]])
        assert isinstance(dataset, VectorDataset)
        assert dataset.dimension == 2

    def test_strings_become_generic(self):
        dataset = as_dataset(["aa", "bb"])
        assert isinstance(dataset, GenericDataset)
