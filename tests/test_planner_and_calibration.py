"""Tests for the query planner, platform calibration and matrix modes."""

import numpy as np
import pytest

from repro import Database, knn_query
from repro.core.multi_query import MultiQueryProcessor, _SlotMatrix
from repro.core.planner import CostFit, QueryPlanner
from repro.costmodel import CostModel, calibrated_cost_model, measure_platform
from repro.metric import MetricSpace
from repro.workloads import make_gaussian_mixture


@pytest.fixture(scope="module")
def clustered():
    return make_gaussian_mixture(
        n=3000, dimension=10, n_clusters=15, cluster_std=0.02, seed=4
    )


class TestCostFit:
    def test_per_query_curve(self):
        fit = CostFit(access="scan", shared_seconds=1.0, marginal_seconds=0.1)
        assert fit.per_query(1) == pytest.approx(1.1)
        assert fit.per_query(10) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            fit.per_query(0)


class TestQueryPlanner:
    def test_prefers_index_for_single_queries(self, clustered):
        planner = QueryPlanner(clustered, probe_queries=8, seed=1)
        plan = planner.plan(n_queries=1, qtype=knn_query(5))
        assert plan.access == "xtree"
        assert plan.block_size == 1

    def test_prefers_scan_for_large_blocks(self, clustered):
        planner = QueryPlanner(clustered, probe_queries=8, seed=1)
        plan = planner.plan(n_queries=500, qtype=knn_query(5))
        assert plan.access == "scan"
        assert plan.block_size == 500

    def test_block_size_clipped_to_memory_bound(self, clustered):
        planner = QueryPlanner(clustered, probe_queries=4)
        plan = planner.plan(n_queries=500, qtype=knn_query(5), max_block_size=64)
        assert plan.block_size == 64

    def test_describe_mentions_all_candidates(self, clustered):
        planner = QueryPlanner(clustered, probe_queries=4)
        plan = planner.plan(n_queries=10, qtype=knn_query(3))
        text = plan.describe()
        assert "scan" in text and "xtree" in text

    def test_database_for_returns_built_database(self, clustered):
        planner = QueryPlanner(clustered, probe_queries=4)
        plan = planner.plan(n_queries=10, qtype=knn_query(3))
        database = planner.database_for(plan)
        assert database.access_method.name == plan.access

    def test_validation(self, clustered):
        with pytest.raises(ValueError):
            QueryPlanner(clustered, probe_queries=1)
        with pytest.raises(ValueError):
            QueryPlanner(clustered, candidates=())
        planner = QueryPlanner(clustered, probe_queries=4)
        with pytest.raises(ValueError):
            planner.plan(n_queries=0, qtype=knn_query(3))

    def test_dataset_smaller_than_probe_sample(self, clustered):
        """Probing clamps to the dataset: tiny workloads must still fit.

        With fewer objects than ``probe_queries`` the old sampler
        repeated queries; repeats fold to near-zero inside the block
        probe while the single-query probe pays each in full, producing
        degenerate (wildly over-shared) fits.
        """
        tiny = clustered[:4]
        planner = QueryPlanner(tiny, probe_queries=8, seed=1)
        plan = planner.plan(n_queries=3, qtype=knn_query(2))
        assert plan.block_size >= 1
        for fit in plan.fits:
            assert fit.shared_seconds >= 0.0
            assert fit.marginal_seconds >= 0.0
            assert fit.per_query(1) > 0.0
            # A fit is degenerate when nearly all cost is "shared":
            # blocking would then look free, which it never is.
            assert fit.marginal_seconds > 0.0


class TestCalibration:
    def test_measure_platform_sane(self):
        timings = measure_platform(16, batch=200, repeats=20)
        assert timings.distance_seconds > 0
        assert timings.comparison_seconds > 0
        assert timings.ratio > 1  # a distance costs more than a comparison

    def test_higher_dimension_costs_more(self):
        low = measure_platform(4, batch=500, repeats=30)
        high = measure_platform(256, batch=500, repeats=30)
        assert high.distance_seconds > low.distance_seconds

    def test_calibrated_model_uses_measured_constants(self):
        model = calibrated_cost_model(16, 1e-3, 5e-3, batch=200, repeats=10)
        assert model.distance_seconds == model.distance_seconds_override
        assert model.sequential_block_seconds == 1e-3

    def test_default_model_unaffected(self):
        assert CostModel(20).distance_seconds == pytest.approx(4.3e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_platform(0)


class TestMatrixModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            _SlotMatrix(MetricSpace("euclidean"), mode="cached")

    def test_eager_charges_on_admit(self):
        space = MetricSpace("euclidean")
        slots = _SlotMatrix(space, mode="eager")
        for i in range(5):
            slots.add(np.array([float(i), 0.0]))
        assert space.counters.query_matrix_distance_calculations == 10

    def test_lazy_charges_on_first_use_only(self):
        space = MetricSpace("euclidean")
        slots = _SlotMatrix(space, mode="lazy")
        a = slots.add(np.array([0.0, 0.0]))
        b = slots.add(np.array([1.0, 0.0]))
        slots.add(np.array([2.0, 0.0]))
        assert space.counters.query_matrix_distance_calculations == 0
        values = slots.pairs(a, [b])
        assert values[0] == pytest.approx(1.0)
        assert space.counters.query_matrix_distance_calculations == 1
        slots.pairs(a, [b])  # cached now
        assert space.counters.query_matrix_distance_calculations == 1

    @pytest.mark.parametrize("mode", ["eager", "lazy"])
    def test_single_admission_charges_nothing(self, mode):
        """Admitting with zero pending queries must not compute pairs.

        Pins the m=1 cost of both fill policies: a lone query has no
        partner rows, so neither policy may charge a matrix distance on
        admission -- eager pays only from the second admission on.
        """
        space = MetricSpace("euclidean")
        slots = _SlotMatrix(space, mode=mode)
        slots.add(np.array([0.5, 0.5]))
        assert space.counters.query_matrix_distance_calculations == 0
        slots.add(np.array([1.5, 0.5]))
        expected = 1 if mode == "eager" else 0
        assert space.counters.query_matrix_distance_calculations == expected

    @pytest.mark.parametrize("mode", ["eager", "lazy"])
    def test_single_query_block_charges_no_matrix_distances(self, clustered, mode):
        """An m=1 multiple similarity query pays zero matrix overhead."""
        database = Database(clustered, access="xtree", block_size=4096)
        with database.measure() as handle:
            processor = MultiQueryProcessor(database, matrix_mode=mode)
            processor.query_all([clustered[0]], knn_query(5))
        assert handle.counters.query_matrix_distance_calculations == 0

    def test_lazy_slot_reuse_invalidates_pairs(self):
        space = MetricSpace("euclidean")
        slots = _SlotMatrix(space, mode="lazy")
        a = slots.add(np.array([0.0, 0.0]))
        b = slots.add(np.array([3.0, 0.0]))
        slots.pairs(a, [b])
        slots.remove(b)
        c = slots.add(np.array([7.0, 0.0]))
        assert c == b  # slot recycled
        assert slots.pairs(a, [c])[0] == pytest.approx(7.0)

    @pytest.mark.parametrize("access", ["scan", "xtree"])
    def test_lazy_mode_answers_identical(self, clustered, access):
        database = Database(clustered, access=access, block_size=4096)
        queries = [clustered[i] for i in range(0, 300, 10)]
        results = {}
        for mode in ("eager", "lazy"):
            database.cold()
            processor = MultiQueryProcessor(database, matrix_mode=mode)
            results[mode] = processor.query_all(queries, knn_query(5))
        for a, b in zip(results["eager"], results["lazy"]):
            assert [x.index for x in a] == [x.index for x in b]

    def test_lazy_mode_never_computes_more_pairs(self, clustered):
        database = Database(clustered, access="scan", block_size=4096)
        queries = [clustered[i] for i in range(40)]
        counts = {}
        for mode in ("eager", "lazy"):
            database.cold()
            with database.measure() as handle:
                processor = MultiQueryProcessor(database, matrix_mode=mode)
                processor.query_all(queries, knn_query(5))
            counts[mode] = handle.counters.query_matrix_distance_calculations
        assert counts["lazy"] <= counts["eager"]
        assert counts["eager"] == len(queries) * (len(queries) - 1) // 2
