"""Tests for the query planner, platform calibration and matrix modes."""

import math

import numpy as np
import pytest

from repro import Database, knn_query, range_query
from repro.core.multi_query import MultiQueryProcessor, _SlotMatrix
from repro.core.planner import (
    CostFit,
    QueryPlanner,
    default_share_bound,
    knee_block_size,
    partition_by_sharing,
)
from repro.costmodel import CostModel, calibrated_cost_model, measure_platform
from repro.metric import MetricSpace
from repro.obs import Observer
from repro.workloads import make_gaussian_mixture


@pytest.fixture(scope="module")
def clustered():
    return make_gaussian_mixture(
        n=3000, dimension=10, n_clusters=15, cluster_std=0.02, seed=4
    )


class TestCostFit:
    def test_per_query_curve(self):
        fit = CostFit(access="scan", shared_seconds=1.0, marginal_seconds=0.1)
        assert fit.per_query(1) == pytest.approx(1.1)
        assert fit.per_query(10) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            fit.per_query(0)


class TestQueryPlanner:
    def test_prefers_index_for_single_queries(self, clustered):
        planner = QueryPlanner(clustered, probe_queries=8, seed=1)
        plan = planner.plan(n_queries=1, qtype=knn_query(5))
        assert plan.access == "xtree"
        assert plan.block_size == 1

    def test_prefers_scan_for_large_blocks(self, clustered):
        planner = QueryPlanner(clustered, probe_queries=8, seed=1)
        plan = planner.plan(n_queries=500, qtype=knn_query(5))
        assert plan.access == "scan"
        assert plan.block_size == 500

    def test_block_size_clipped_to_memory_bound(self, clustered):
        planner = QueryPlanner(clustered, probe_queries=4)
        plan = planner.plan(n_queries=500, qtype=knn_query(5), max_block_size=64)
        assert plan.block_size == 64

    def test_describe_mentions_all_candidates(self, clustered):
        planner = QueryPlanner(clustered, probe_queries=4)
        plan = planner.plan(n_queries=10, qtype=knn_query(3))
        text = plan.describe()
        assert "scan" in text and "xtree" in text

    def test_database_for_returns_built_database(self, clustered):
        planner = QueryPlanner(clustered, probe_queries=4)
        plan = planner.plan(n_queries=10, qtype=knn_query(3))
        database = planner.database_for(plan)
        assert database.access_method.name == plan.access

    def test_validation(self, clustered):
        with pytest.raises(ValueError):
            QueryPlanner(clustered, probe_queries=1)
        with pytest.raises(ValueError):
            QueryPlanner(clustered, candidates=())
        planner = QueryPlanner(clustered, probe_queries=4)
        with pytest.raises(ValueError):
            planner.plan(n_queries=0, qtype=knn_query(3))

    def test_dataset_smaller_than_probe_sample(self, clustered):
        """Probing clamps to the dataset: tiny workloads must still fit.

        With fewer objects than ``probe_queries`` the old sampler
        repeated queries; repeats fold to near-zero inside the block
        probe while the single-query probe pays each in full, producing
        degenerate (wildly over-shared) fits.
        """
        tiny = clustered[:4]
        planner = QueryPlanner(tiny, probe_queries=8, seed=1)
        plan = planner.plan(n_queries=3, qtype=knn_query(2))
        assert plan.block_size >= 1
        for fit in plan.fits:
            assert fit.shared_seconds >= 0.0
            assert fit.marginal_seconds >= 0.0
            assert fit.per_query(1) > 0.0
            # A fit is degenerate when nearly all cost is "shared":
            # blocking would then look free, which it never is.
            assert fit.marginal_seconds > 0.0


class TestCalibration:
    def test_measure_platform_sane(self):
        timings = measure_platform(16, batch=200, repeats=20)
        assert timings.distance_seconds > 0
        assert timings.comparison_seconds > 0
        assert timings.ratio > 1  # a distance costs more than a comparison

    def test_higher_dimension_costs_more(self):
        low = measure_platform(4, batch=500, repeats=30)
        high = measure_platform(256, batch=500, repeats=30)
        assert high.distance_seconds > low.distance_seconds

    def test_calibrated_model_uses_measured_constants(self):
        model = calibrated_cost_model(16, 1e-3, 5e-3, batch=200, repeats=10)
        assert model.distance_seconds == model.distance_seconds_override
        assert model.sequential_block_seconds == 1e-3

    def test_default_model_unaffected(self):
        assert CostModel(20).distance_seconds == pytest.approx(4.3e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_platform(0)


class TestMatrixModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            _SlotMatrix(MetricSpace("euclidean"), mode="cached")

    def test_eager_charges_on_admit(self):
        space = MetricSpace("euclidean")
        slots = _SlotMatrix(space, mode="eager")
        for i in range(5):
            slots.add(np.array([float(i), 0.0]))
        assert space.counters.query_matrix_distance_calculations == 10

    def test_lazy_charges_on_first_use_only(self):
        space = MetricSpace("euclidean")
        slots = _SlotMatrix(space, mode="lazy")
        a = slots.add(np.array([0.0, 0.0]))
        b = slots.add(np.array([1.0, 0.0]))
        slots.add(np.array([2.0, 0.0]))
        assert space.counters.query_matrix_distance_calculations == 0
        values = slots.pairs(a, [b])
        assert values[0] == pytest.approx(1.0)
        assert space.counters.query_matrix_distance_calculations == 1
        slots.pairs(a, [b])  # cached now
        assert space.counters.query_matrix_distance_calculations == 1

    @pytest.mark.parametrize("mode", ["eager", "lazy"])
    def test_single_admission_charges_nothing(self, mode):
        """Admitting with zero pending queries must not compute pairs.

        Pins the m=1 cost of both fill policies: a lone query has no
        partner rows, so neither policy may charge a matrix distance on
        admission -- eager pays only from the second admission on.
        """
        space = MetricSpace("euclidean")
        slots = _SlotMatrix(space, mode=mode)
        slots.add(np.array([0.5, 0.5]))
        assert space.counters.query_matrix_distance_calculations == 0
        slots.add(np.array([1.5, 0.5]))
        expected = 1 if mode == "eager" else 0
        assert space.counters.query_matrix_distance_calculations == expected

    @pytest.mark.parametrize("mode", ["eager", "lazy"])
    def test_single_query_block_charges_no_matrix_distances(self, clustered, mode):
        """An m=1 multiple similarity query pays zero matrix overhead."""
        database = Database(clustered, access="xtree", block_size=4096)
        with database.measure() as handle:
            processor = MultiQueryProcessor(database, matrix_mode=mode)
            processor.query_all([clustered[0]], knn_query(5))
        assert handle.counters.query_matrix_distance_calculations == 0

    def test_lazy_slot_reuse_invalidates_pairs(self):
        space = MetricSpace("euclidean")
        slots = _SlotMatrix(space, mode="lazy")
        a = slots.add(np.array([0.0, 0.0]))
        b = slots.add(np.array([3.0, 0.0]))
        slots.pairs(a, [b])
        slots.remove(b)
        c = slots.add(np.array([7.0, 0.0]))
        assert c == b  # slot recycled
        assert slots.pairs(a, [c])[0] == pytest.approx(7.0)

    @pytest.mark.parametrize("access", ["scan", "xtree"])
    def test_lazy_mode_answers_identical(self, clustered, access):
        database = Database(clustered, access=access, block_size=4096)
        queries = [clustered[i] for i in range(0, 300, 10)]
        results = {}
        for mode in ("eager", "lazy"):
            database.cold()
            processor = MultiQueryProcessor(database, matrix_mode=mode)
            results[mode] = processor.query_all(queries, knn_query(5))
        for a, b in zip(results["eager"], results["lazy"]):
            assert [x.index for x in a] == [x.index for x in b]

    def test_lazy_mode_never_computes_more_pairs(self, clustered):
        database = Database(clustered, access="scan", block_size=4096)
        queries = [clustered[i] for i in range(40)]
        counts = {}
        for mode in ("eager", "lazy"):
            database.cold()
            with database.measure() as handle:
                processor = MultiQueryProcessor(database, matrix_mode=mode)
                processor.query_all(queries, knn_query(5))
            counts[mode] = handle.counters.query_matrix_distance_calculations
        assert counts["lazy"] <= counts["eager"]
        assert counts["eager"] == len(queries) * (len(queries) - 1) // 2


class TestPartitionBySharing:
    def _objs(self):
        # Two tight clumps far apart, admission order interleaved.
        return [
            np.array([0.0, 0.0]),
            np.array([10.0, 10.0]),
            np.array([0.1, 0.0]),
            np.array([10.1, 10.0]),
        ]

    def test_infinite_bound_forces_one_partition(self):
        space = MetricSpace("euclidean")
        groups = partition_by_sharing(self._objs(), space, share_bound=math.inf)
        assert groups == [[0, 1, 2, 3]]

    def test_zero_bound_forces_singletons(self):
        space = MetricSpace("euclidean")
        groups = partition_by_sharing(self._objs(), space, share_bound=0.0)
        assert groups == [[0], [1], [2], [3]]

    def test_default_bound_groups_the_clumps(self):
        space = MetricSpace("euclidean")
        groups = partition_by_sharing(self._objs(), space)
        assert sorted(groups) == [[0, 2], [1, 3]]

    def test_seed_is_oldest_and_members_stay_sorted(self):
        space = MetricSpace("euclidean")
        groups = partition_by_sharing(self._objs(), space)
        # FIFO: the first partition is seeded by position 0, the next by
        # the oldest remaining (position 1); members in admission order.
        assert groups[0] == [0, 2]
        assert groups[1] == [1, 3]

    def test_max_partition_caps_group_size(self):
        space = MetricSpace("euclidean")
        objs = [np.array([0.0, float(i) * 0.01]) for i in range(6)]
        groups = partition_by_sharing(objs, space, max_partition=2)
        assert all(len(g) <= 2 for g in groups)
        assert sorted(i for g in groups for i in g) == list(range(6))

    def test_empty_and_single(self):
        space = MetricSpace("euclidean")
        assert partition_by_sharing([], space) == []
        assert partition_by_sharing([np.zeros(2)], space) == [[0]]

    def test_default_share_bound_degenerate_scales(self):
        space = MetricSpace("euclidean")
        assert default_share_bound([np.zeros(2)], space) == math.inf
        identical = [np.zeros(2) for _ in range(4)]
        assert default_share_bound(identical, space) == math.inf

    def test_knee_block_size_reexported_by_service(self):
        from repro.service import knee_block_size as service_knee

        assert service_knee is knee_block_size


class TestPlanBatch:
    @pytest.fixture(scope="class")
    def planner(self, clustered):
        return QueryPlanner(clustered, probe_queries=4, seed=1)

    def test_partitions_cover_batch_exactly_once(self, planner, clustered):
        objs = [clustered[i] for i in range(0, 160, 10)]
        plan = planner.plan_batch(objs, knn_query(3), max_block=8)
        members = sorted(i for p in plan.partitions for i in p.members)
        assert members == list(range(len(objs)))
        assert all(p.block_size <= 8 for p in plan.partitions)
        assert plan.n_queries == len(objs)
        assert "partition" in plan.describe()

    def test_forced_single_partition(self, planner, clustered):
        objs = [clustered[i] for i in range(12)]
        plan = planner.plan_batch(
            objs, knn_query(3), max_block=16, share_bound=math.inf
        )
        assert len(plan.partitions) == 1
        assert plan.partitions[0].members == tuple(range(12))

    def test_kinds_never_share_a_partition(self, planner, clustered):
        objs = [clustered[i] for i in range(16)]
        qtypes = [
            knn_query(3) if i % 2 else range_query(0.2 + 0.1 * (i % 3))
            for i in range(16)
        ]
        plan = planner.plan_batch(objs, qtypes, max_block=16)
        for part in plan.partitions:
            kinds = {qtypes[i].kind for i in part.members}
            assert len(kinds) == 1

    def test_partition_plans_name_access_and_engine_cell(self, planner, clustered):
        objs = [clustered[i] for i in range(8)]
        plan = planner.plan_batch(objs, knn_query(3), max_block=8)
        for part in plan.partitions:
            assert part.access in ("scan", "xtree")
            assert part.predicted_seconds_per_query > 0.0
            assert part.sharing_factor >= 1.0

    def test_probe_cache_probes_each_cell_once(self, clustered):
        planner = QueryPlanner(clustered, probe_queries=4, seed=1)
        first = planner.fit_surface(knn_query(3))
        cells = len(planner._fit_cache)
        again = planner.fit_surface(knn_query(3))
        assert len(planner._fit_cache) == cells
        assert first == again

    def test_unbuildable_candidate_skipped_with_event(self, clustered):
        observer = Observer(trace=True)
        planner = QueryPlanner(
            clustered,
            metric="manhattan",
            candidates=("xtree", "vafile"),
            probe_queries=4,
            observer=observer,
        )
        assert "vafile" in planner.unavailable
        planner.fit_surface(knn_query(3))
        assert planner.probes_skipped >= 1
        counters = observer.metrics.snapshot()["counters"]
        assert counters.get("events.planner.probe.skipped", 0) >= 1
        # the skip is cached: re-probing does not re-emit
        planner.fit_surface(knn_query(3))
        after = observer.metrics.snapshot()["counters"]
        assert after["events.planner.probe.skipped"] == counters[
            "events.planner.probe.skipped"
        ]
