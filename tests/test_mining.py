"""Tests for the mining package (schemes and all paper instances)."""

import numpy as np
import pytest

from repro import Database, knn_query, range_query
from repro.mining import (
    ExplorationCallbacks,
    dbscan,
    detect_trends,
    explore_neighborhoods,
    explore_neighborhoods_multiple,
    knn_classify,
    proximity_analysis,
    simulate_concurrent_exploration,
    spatial_association_rules,
)
from repro.mining.assoc import co_location_summary
from repro.mining.dbscan import NOISE
from repro.workloads import make_gaussian_mixture


@pytest.fixture(scope="module")
def mixture():
    return make_gaussian_mixture(
        n=1200, dimension=6, n_clusters=5, cluster_std=0.02, seed=9
    )


@pytest.fixture(scope="module")
def db(mixture):
    return Database(mixture, access="xtree", block_size=4096)


class TestExploreSchemes:
    def _trace(self, database, scheme, **kwargs):
        visits = []
        callbacks = ExplorationCallbacks(
            proc_2=lambda i, answers: visits.append(
                (i, tuple(sorted(a.index for a in answers)))
            )
        )
        stats = scheme(
            database, [0, 5], range_query(0.05), callbacks, **kwargs
        )
        return visits, stats

    def test_single_and_multiple_produce_identical_traces(self, mixture):
        visits_single, stats_single = self._trace(
            Database(mixture, access="scan"), explore_neighborhoods,
            max_iterations=40,
        )
        visits_multi, stats_multi = self._trace(
            Database(mixture, access="scan"),
            explore_neighborhoods_multiple,
            batch_size=8,
            max_iterations=40,
        )
        assert visits_single == visits_multi
        assert stats_single.objects_visited == stats_multi.objects_visited

    def test_multiple_issues_fewer_page_reads(self, mixture):
        db_single = Database(mixture, access="scan", buffer_fraction=0.0)
        with db_single.measure() as single:
            explore_neighborhoods(
                db_single, [0], range_query(0.05), max_iterations=20
            )
        db_multi = Database(mixture, access="scan", buffer_fraction=0.0)
        with db_multi.measure() as multi:
            explore_neighborhoods_multiple(
                db_multi, [0], range_query(0.05), batch_size=10, max_iterations=20
            )
        assert multi.counters.page_reads < single.counters.page_reads

    def test_termination_on_revisits(self, mixture):
        # The filter must not enqueue anything twice; with a huge radius
        # the loop still terminates.
        database = Database(mixture, access="scan")
        stats = explore_neighborhoods(database, [0], range_query(5.0))
        assert stats.queries_issued >= 1

    def test_condition_check_stops_early(self, mixture):
        database = Database(mixture, access="scan")
        stats = explore_neighborhoods(
            database,
            [0],
            range_query(0.05),
            ExplorationCallbacks(condition_check=lambda control: False),
        )
        assert stats.queries_issued == 0

    def test_bad_batch_size(self, mixture):
        with pytest.raises(ValueError):
            explore_neighborhoods_multiple(
                Database(mixture, access="scan"), [0], range_query(0.1), batch_size=0
            )


class TestDBSCAN:
    def test_recovers_generated_clusters(self, db, mixture):
        result = dbscan(db, eps=0.08, min_pts=5)
        assert result.n_clusters == 5
        # Clusters must align with the generator's labels (up to renaming).
        for cluster_id in range(result.n_clusters):
            members = result.cluster_members(cluster_id)
            true = mixture.labels[members]
            assert len(set(true.tolist())) == 1

    def test_batched_equals_single(self, mixture):
        result_a = dbscan(Database(mixture, access="scan"), 0.08, 5, batch_size=1)
        result_b = dbscan(Database(mixture, access="scan"), 0.08, 5, batch_size=20)
        assert np.array_equal(result_a.labels, result_b.labels)
        assert result_a.queries_issued == result_b.queries_issued

    def test_noise_detected(self, mixture):
        # A tiny eps turns most objects into noise.
        result = dbscan(Database(mixture, access="scan"), eps=1e-6, min_pts=3)
        assert np.all(result.labels == NOISE)
        assert result.n_clusters == 0

    def test_all_objects_labelled(self, db):
        result = dbscan(db, eps=0.08, min_pts=5)
        assert np.all(result.labels >= NOISE)

    def test_parameter_validation(self, db):
        with pytest.raises(ValueError):
            dbscan(db, eps=0.0, min_pts=3)
        with pytest.raises(ValueError):
            dbscan(db, eps=0.1, min_pts=0)
        with pytest.raises(ValueError):
            dbscan(db, eps=0.1, min_pts=3, batch_size=0)


class TestClassification:
    def test_high_accuracy_on_clustered_data(self, db, mixture):
        indices = list(range(0, 600, 7))
        predictions = knn_classify(db, indices, k=5, exclude_self=True)
        accuracy = np.mean(
            [p == mixture.labels[i] for i, p in zip(indices, predictions)]
        )
        assert accuracy > 0.95

    def test_include_self_biases_towards_own_label(self, db, mixture):
        indices = [3, 14, 100]
        predictions = knn_classify(db, indices, k=1, exclude_self=False)
        assert predictions == [mixture.labels[i] for i in indices]

    def test_block_size_does_not_change_predictions(self, db):
        indices = list(range(30))
        a = knn_classify(db, indices, k=5, block_size=30)
        b = knn_classify(db, indices, k=5, block_size=1)
        assert a == b

    def test_custom_labels(self, db, mixture):
        labels = np.zeros(len(mixture), dtype=int)
        predictions = knn_classify(db, [0, 1], k=3, labels=labels)
        assert predictions == [0, 0]

    def test_missing_labels_rejected(self, small_vectors):
        database = Database(small_vectors, access="scan")
        with pytest.raises(ValueError):
            knn_classify(database, [0], k=3)


class TestExplorationSimulator:
    def test_round_structure(self, db):
        trace = simulate_concurrent_exploration(db, n_users=4, k=5, n_rounds=3)
        assert len(trace.rounds) == 4
        assert len(trace.rounds[0]) == 4  # one start per user
        assert all(len(path) == 4 for path in trace.user_paths)

    def test_users_move_to_own_answers(self, db):
        trace = simulate_concurrent_exploration(db, n_users=2, k=3, n_rounds=2, seed=5)
        # Every consecutive pair in a path must be k-NN related.
        for path in trace.user_paths:
            for a, b in zip(path, path[1:]):
                answers = db.similarity_query(db.dataset[a], knn_query(3))
                assert b in {x.index for x in answers}

    def test_queries_counted(self, db):
        trace = simulate_concurrent_exploration(db, n_users=2, k=3, n_rounds=1)
        assert trace.queries_issued == 2 + len(trace.rounds[1])

    def test_parameter_validation(self, db):
        with pytest.raises(ValueError):
            simulate_concurrent_exploration(db, n_users=0, k=3, n_rounds=1)


class TestAssociationRules:
    def test_self_rules_excluded(self, db):
        rules = spatial_association_rules(
            db, reference_type=0, eps=0.08, min_support=0.0, min_confidence=0.0
        )
        assert all(rule.other_type != 0 for rule in rules)

    def test_thresholds_filter(self, db):
        all_rules = spatial_association_rules(
            db, reference_type=0, eps=0.5, min_support=0.0, min_confidence=0.0
        )
        strict = spatial_association_rules(
            db, reference_type=0, eps=0.5, min_support=0.0, min_confidence=0.9
        )
        assert len(strict) <= len(all_rules)
        assert all(rule.confidence >= 0.9 for rule in strict)

    def test_wide_radius_relates_everything(self, db, mixture):
        rules = spatial_association_rules(
            db, reference_type=0, eps=10.0, min_support=0.0, min_confidence=0.99
        )
        others = set(np.unique(mixture.labels)) - {0}
        assert {rule.other_type for rule in rules} == others

    def test_co_location_summary_symmetric_support(self, db):
        counts = co_location_summary(db, eps=10.0)
        # With an all-covering radius every ordered type pair appears.
        types = set(np.unique(db.dataset.labels))
        assert len(counts) == len(types) * (len(types) - 1)

    def test_missing_reference_type(self, db):
        assert spatial_association_rules(db, reference_type=99, eps=0.1) == []


class TestTrendDetection:
    def test_detects_linear_trend(self, mixture):
        database = Database(mixture, access="scan")
        # Attribute = projection on dim 0: moving away changes it linearly
        # in expectation along that axis.
        attribute = mixture.vectors[:, 0] * 10.0
        result = detect_trends(
            database, start=0, attribute=attribute, n_paths=6, path_length=5
        )
        assert len(result.paths) == 6
        assert all(len(p.objects) == len(p.distances) for p in result.paths)

    def test_constant_attribute_zero_slope(self, mixture):
        database = Database(mixture, access="scan")
        attribute = np.ones(len(mixture))
        result = detect_trends(database, start=0, attribute=attribute, n_paths=3)
        assert result.mean_slope == pytest.approx(0.0, abs=1e-12)

    def test_attribute_length_checked(self, mixture):
        database = Database(mixture, access="scan")
        with pytest.raises(ValueError):
            detect_trends(database, start=0, attribute=np.ones(3))


class TestProximityAnalysis:
    def test_closest_excludes_cluster(self, db, mixture):
        cluster = np.flatnonzero(mixture.labels == 0)[:15]
        report = proximity_analysis(db, cluster, top_k=8)
        assert len(report.closest) == 8
        assert not set(i for i, _ in report.closest) & set(cluster.tolist())

    def test_closest_sorted_by_distance(self, db, mixture):
        cluster = np.flatnonzero(mixture.labels == 1)[:10]
        report = proximity_analysis(db, cluster, top_k=6)
        distances = [d for _, d in report.closest]
        assert distances == sorted(distances)

    def test_common_features_on_tight_cluster(self, db, mixture):
        cluster = np.flatnonzero(mixture.labels == 2)[:10]
        report = proximity_analysis(db, cluster, top_k=5, min_fraction=0.6)
        # The closest outsiders are other members of the same Gaussian,
        # so they share most feature buckets.
        assert len(report.common_features) >= 1
        assert all(f.fraction >= 0.6 for f in report.common_features)

    def test_empty_cluster_rejected(self, db):
        with pytest.raises(ValueError):
            proximity_analysis(db, [])
