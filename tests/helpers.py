"""Brute-force oracles shared by the test modules."""

from __future__ import annotations

import math

import numpy as np

from repro.core.types import QueryType


def brute_force_answers(
    vectors: np.ndarray, query: np.ndarray, qtype: QueryType
) -> list[tuple[int, float]]:
    """Reference implementation of Definition 1 for Euclidean vectors.

    Returns ``(index, distance)`` pairs sorted by distance then index,
    honouring both the range and the cardinality component of the query
    type.  Used as the oracle for every engine/access-method combination.
    """
    distances = np.sqrt(((vectors - query) ** 2).sum(axis=1))
    order = sorted(range(len(vectors)), key=lambda i: (distances[i], i))
    answers = [
        (i, float(distances[i])) for i in order if distances[i] <= qtype.range
    ]
    if not math.isinf(qtype.cardinality):
        answers = answers[: int(qtype.cardinality)]
    return answers


def answer_indices_match(
    got: list, expected: list[tuple[int, float]], tolerance: float = 1e-9
) -> bool:
    """Compare answers, tolerating reordering among distance ties."""
    if len(got) != len(expected):
        return False
    got_dists = sorted(a.distance for a in got)
    exp_dists = sorted(d for _, d in expected)
    return all(
        abs(g - e) <= tolerance * max(1.0, abs(e))
        for g, e in zip(got_dists, exp_dists)
    )
