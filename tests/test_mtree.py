"""Tests for the M-tree access method."""

import numpy as np
import pytest

from repro import Database, GenericDataset, get_distance, knn_query, range_query

from tests.helpers import brute_force_answers


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(31)
    centers = rng.random((4, 4))
    return np.clip(
        centers[rng.integers(0, 4, 400)] + rng.standard_normal((400, 4)) * 0.05,
        0,
        1,
    )


@pytest.fixture(scope="module")
def vector_db(vectors):
    return Database(vectors, access="mtree", block_size=2048)


@pytest.fixture(scope="module")
def words():
    rng = np.random.default_rng(32)
    return [
        "".join(rng.choice(list("abcdef"), size=rng.integers(3, 10)))
        for _ in range(250)
    ]


@pytest.fixture(scope="module")
def word_db(words):
    return Database(
        GenericDataset(words), metric="levenshtein", access="mtree", block_size=2048
    )


class TestStructure:
    def test_all_objects_stored_exactly_once(self, vector_db):
        stored = sorted(
            int(i)
            for page in vector_db.access_method.data_pages()
            for i in page.indices
        )
        assert stored == list(range(len(vector_db.dataset)))

    def test_covering_radii_valid(self, vector_db):
        assert vector_db.access_method.covering_radii_valid()

    def test_covering_radii_valid_strings(self, word_db):
        assert word_db.access_method.covering_radii_valid()

    def test_height_positive(self, vector_db):
        assert vector_db.access_method.height() >= 2

    def test_leaf_capacity_respected(self, vector_db):
        tree = vector_db.access_method
        for page in tree.data_pages():
            assert page.n_objects <= tree.leaf_capacity

    def test_summary(self, vector_db):
        summary = vector_db.access_method.summary()
        assert summary["name"] == "mtree"
        assert summary["pages"] >= 2


class TestVectorQueries:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_knn_matches_brute_force(self, vector_db, vectors, k):
        for qi in (0, 42, 200):
            answers = vector_db.similarity_query(vectors[qi], knn_query(k))
            expected = brute_force_answers(vectors, vectors[qi], knn_query(k))
            assert sorted(a.distance for a in answers) == pytest.approx(
                [d for _, d in expected]
            )

    @pytest.mark.parametrize("eps", [0.05, 0.2])
    def test_range_matches_brute_force(self, vector_db, vectors, eps):
        for qi in (7, 300):
            answers = vector_db.similarity_query(vectors[qi], range_query(eps))
            expected = brute_force_answers(vectors, vectors[qi], range_query(eps))
            assert {a.index for a in answers} == {i for i, _ in expected}

    def test_knn_prunes_pages(self, vector_db, vectors):
        with vector_db.measure() as run:
            vector_db.similarity_query(vectors[0], knn_query(2))
        n_data_pages = len(vector_db.access_method.data_pages())
        touched = run.counters.page_reads + run.counters.buffer_hits
        assert touched < n_data_pages + 5  # directory included

    def test_query_distances_are_counted(self, vector_db, vectors):
        with vector_db.measure() as run:
            vector_db.similarity_query(vectors[0], knn_query(2))
        # M-tree query-time routing distances must be charged.
        assert run.counters.distance_calculations > 0


class TestStringQueries:
    def test_knn_matches_brute_force(self, word_db, words):
        lev = get_distance("levenshtein")
        for query in ("abcdef", words[10]):
            answers = word_db.similarity_query(query, knn_query(5))
            expected = sorted(lev.one(w, query) for w in words)[:5]
            assert sorted(a.distance for a in answers) == expected

    def test_range_matches_brute_force(self, word_db, words):
        lev = get_distance("levenshtein")
        query = "faced"
        answers = word_db.similarity_query(query, range_query(2.0))
        expected = {i for i, w in enumerate(words) if lev.one(w, query) <= 2.0}
        assert {a.index for a in answers} == expected

    def test_multiple_query_on_strings(self, word_db, words):
        lev = get_distance("levenshtein")
        queries = words[:8]
        results = word_db.multiple_similarity_query(queries, knn_query(3))
        for query, answers in zip(queries, results):
            expected = sorted(lev.one(w, query) for w in words)[:3]
            assert sorted(a.distance for a in answers) == expected


class TestMultiQueryBounds:
    def test_routing_based_lower_bounds_valid(self, vector_db, vectors):
        # The stream's triangle-inequality page bound for non-driver
        # queries must never exceed the true minimum distance.
        tree = vector_db.access_method
        driver = vectors[0]
        others = vectors[1:6]
        stream = tree.page_stream(driver)
        euclid = get_distance("euclidean")
        driver_dists = np.array([euclid.one(driver, o) for o in others])
        item = stream.next_page(float("inf"))
        while item is not None:
            _, page = item
            bounds = stream.lower_bounds_for_others(page, others, 0.0, driver_dists)
            members = vector_db.dataset.batch(page.indices)
            for bound, other in zip(bounds, others):
                true_min = min(euclid.one(member, other) for member in members)
                assert bound <= true_min + 1e-9
            item = stream.next_page(float("inf"))
