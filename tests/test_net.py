"""Tests for the network front-end and the trace-driven load generator.

The load-bearing guarantees:

* the framing layer survives arbitrary read boundaries, rejects
  oversized frames before buffering them, and turns malformed payloads
  into *typed* errors that keep the stream aligned;
* every submit is answered explicitly -- ``result``, ``shed`` (with the
  live queue depth), or ``error`` -- never a silent drop;
* answers that cross the wire are byte-identical to the in-process
  :class:`QueryScheduler` path, for every access method;
* degraded (Def. 4 partial) answers reach the client with their
  completeness bound, streamed like any other answer;
* a recorded load trace replays identically, in process and over a
  socket, and ``repro serve`` exits gracefully on SIGINT with its
  exports flushed.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import Database, knn_query, range_query
from repro.faults import KIND_SERVER_CRASH, FaultPlan, RetryPolicy, SiteSpec
from repro.net import (
    FrameCorrupt,
    FrameDecoder,
    FrameTooLarge,
    QueryClient,
    QueryServer,
    encode_frame,
    qtype_from_wire,
    qtype_to_wire,
)
from repro.net.protocol import HEADER, query_from_wire
from repro.workloads.loadgen import (
    compare_answers,
    load_trace,
    record_trace,
    replay_in_process,
    replay_over_wire,
    save_trace,
    trace_dataset,
)

ACCESS_METHODS = ["scan", "xtree", "rstar", "mtree", "vafile"]


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(11)
    centers = rng.random((5, 6))
    return np.clip(
        centers[rng.integers(0, 5, 600)] + rng.standard_normal((600, 6)) * 0.04,
        0,
        1,
    )


def crash_plan():
    return FaultPlan(
        seed=5,
        sites=(
            SiteSpec(
                pattern="server:0",
                kinds=(KIND_SERVER_CRASH,),
                at_ops=(2,),
                max_faults=1,
            ),
        ),
        retry=RetryPolicy(max_retries=3),
    )


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


class TestFraming:
    def test_round_trip(self):
        message = {"type": "hello", "protocol": 1, "client": "t"}
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(message)) == [message]

    def test_byte_by_byte_partial_reads(self):
        messages = [{"type": "a", "n": i} for i in range(3)]
        stream = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i : i + 1]))
        assert out == messages

    def test_many_frames_in_one_read(self):
        messages = [{"type": "a", "n": i} for i in range(5)]
        stream = b"".join(encode_frame(m) for m in messages)
        assert FrameDecoder().feed(stream) == messages

    def test_oversized_frame_rejected_before_buffering(self):
        decoder = FrameDecoder(max_frame=64)
        with pytest.raises(FrameTooLarge):
            decoder.feed(HEADER.pack(65))
        # Only the 4 header bytes ever reached the decoder: the payload
        # was refused up front, not accumulated.
        assert len(decoder._buffer) <= HEADER.size

    def test_malformed_json_is_typed_and_recoverable(self):
        decoder = FrameDecoder()
        bad = b"{not json"
        with pytest.raises(FrameCorrupt) as excinfo:
            decoder.feed(HEADER.pack(len(bad)) + bad)
        assert excinfo.value.code == "bad-json"
        assert excinfo.value.recoverable
        # The stream stays aligned: the next well-formed frame parses.
        assert decoder.feed(encode_frame({"type": "ok"})) == [{"type": "ok"}]

    def test_non_object_payload_rejected(self):
        payload = json.dumps([1, 2, 3]).encode()
        with pytest.raises(FrameCorrupt):
            FrameDecoder().feed(HEADER.pack(len(payload)) + payload)

    def test_qtype_round_trips_including_inf(self):
        from repro.core.types import bounded_knn_query

        for qtype in (knn_query(7), range_query(0.25), bounded_knn_query(3, 0.5)):
            wire = qtype_to_wire(qtype)
            json.dumps(wire, allow_nan=False)  # must be standard JSON
            assert qtype_from_wire(wire) == qtype

    def test_query_validation(self):
        assert query_from_wire([1, 2.5]) == [1.0, 2.5]
        for bad in ([], [True, False], ["a"], "nope", None, 3):
            with pytest.raises(ValueError):
                query_from_wire(bad)


# ----------------------------------------------------------------------
# Server integration (one event loop per test; no pytest-asyncio)
# ----------------------------------------------------------------------


def make_server(database, **kwargs):
    scheduler = database.serve(
        block_target=kwargs.pop("block_target", 4),
        max_block=kwargs.pop("max_block", 8),
        max_wait=kwargs.pop("max_wait", 64),
    )
    return QueryServer(scheduler, poll_interval=0, **kwargs)


async def _raw_connect(server):
    """A raw socket speaking frames by hand (for protocol-abuse tests)."""
    host, port = server.address
    reader, writer = await asyncio.open_connection(host, port)
    decoder = FrameDecoder()

    async def read_frames(n=1):
        messages = []
        while len(messages) < n:
            data = await asyncio.wait_for(reader.read(65536), timeout=5)
            assert data, "server closed early"
            messages.extend(decoder.feed(data))
        return messages

    return reader, writer, read_frames


class TestServer:
    def test_answers_byte_identical_per_access_method(self, vectors):
        queries = [vectors[i] for i in (3, 101, 256, 430, 77, 512)]

        for access in ACCESS_METHODS:
            reference = Database(vectors, access=access).session().run(
                queries, knn_query(5)
            )

            async def run(access=access):
                database = Database(vectors, access=access)
                server = make_server(database)
                await server.start()
                host, port = server.address
                clients = [
                    await QueryClient.connect(host, port, client=f"c{i}")
                    for i in range(3)
                ]
                futures = [
                    await clients[i % 3].submit(obj, knn_query(5))
                    for i, obj in enumerate(queries)
                ]
                for client in clients:
                    await client.bye()
                results = await asyncio.gather(*futures)
                await server.shutdown()
                return [r.answers for r in results]

            wire = asyncio.run(run())
            assert wire == [list(r) for r in reference], access

    def test_shed_on_queue_full_carries_depth(self, vectors):
        async def run():
            database = Database(vectors, access="xtree")
            server = make_server(
                database, block_target=64, max_block=64, shed_depth=2
            )
            await server.start()
            client = await QueryClient.connect(*server.address)
            # Open loop: the queue never flushes (huge block target, no
            # pump), so depth builds until the admission bound sheds.
            futures = [
                await client.submit(vectors[i], knn_query(3))
                for i in range(4)
            ]
            await client.bye()
            results = await asyncio.gather(*futures)
            await server.shutdown()
            return results

        results = asyncio.run(run())
        shed = [r for r in results if r.shed]
        assert shed, "expected queue-full shedding"
        for result in shed:
            assert result.shed_reason == "queue-full"
            assert result.queue_depth >= 2
            assert result.answers == []

    def test_shed_on_client_inflight_bound(self, vectors):
        async def run():
            database = Database(vectors, access="xtree")
            server = make_server(
                database, block_target=64, max_block=64, max_inflight=1
            )
            await server.start()
            client = await QueryClient.connect(*server.address)
            first = await client.submit(vectors[0], knn_query(3))
            second = await client.submit(vectors[1], knn_query(3))
            shed = await asyncio.wait_for(second, timeout=5)
            await client.bye()
            kept = await asyncio.wait_for(first, timeout=5)
            await server.shutdown()
            return kept, shed

        kept, shed = asyncio.run(run())
        assert shed.shed and shed.shed_reason == "client-inflight"
        assert not kept.shed and len(kept.answers) == 3

    def test_submit_before_hello_is_rejected(self, vectors):
        async def run():
            database = Database(vectors, access="scan")
            server = make_server(database)
            await server.start()
            _, writer, read_frames = await _raw_connect(server)
            writer.write(
                encode_frame(
                    {
                        "type": "submit",
                        "id": 1,
                        "query": [0.1] * 6,
                        "qtype": qtype_to_wire(knn_query(3)),
                    }
                )
            )
            await writer.drain()
            (error,) = await read_frames()
            writer.close()
            await server.shutdown()
            return error

        error = asyncio.run(run())
        assert error["type"] == "error"
        assert error["code"] == "bad-handshake"

    def test_wrong_protocol_version_rejected(self, vectors):
        async def run():
            database = Database(vectors, access="scan")
            server = make_server(database)
            await server.start()
            _, writer, read_frames = await _raw_connect(server)
            writer.write(encode_frame({"type": "hello", "protocol": 99}))
            await writer.drain()
            (error,) = await read_frames()
            writer.close()
            await server.shutdown()
            return error

        error = asyncio.run(run())
        assert error["type"] == "error"
        assert error["code"] == "bad-version"

    def test_malformed_frame_gets_typed_error_and_connection_survives(
        self, vectors
    ):
        async def run():
            database = Database(vectors, access="scan")
            server = make_server(database)
            await server.start()
            _, writer, read_frames = await _raw_connect(server)
            writer.write(encode_frame({"type": "hello", "protocol": 1}))
            await writer.drain()
            (hello_ok,) = await read_frames()
            garbage = b"\xff{definitely not json"
            writer.write(HEADER.pack(len(garbage)) + garbage)
            await writer.drain()
            (error,) = await read_frames()
            # Recoverable: the same connection still serves a query.
            writer.write(
                encode_frame(
                    {
                        "type": "submit",
                        "id": 1,
                        "query": [float(x) for x in vectors[0]],
                        "qtype": qtype_to_wire(knn_query(3)),
                        "stream": False,
                    }
                )
            )
            writer.write(encode_frame({"type": "bye"}))
            await writer.drain()
            rest = await read_frames(2)
            writer.close()
            await server.shutdown()
            return hello_ok, error, rest

        hello_ok, error, rest = asyncio.run(run())
        assert hello_ok["type"] == "hello_ok"
        assert error["type"] == "error" and error["code"] == "bad-json"
        assert {m["type"] for m in rest} == {"result", "bye_ok"}

    def test_oversized_frame_refused(self, vectors):
        async def run():
            database = Database(vectors, access="scan")
            server = make_server(database, max_frame=128)
            await server.start()
            _, writer, read_frames = await _raw_connect(server)
            writer.write(encode_frame({"type": "hello", "protocol": 1}))
            await writer.drain()
            await read_frames()
            writer.write(HEADER.pack(4096))
            await writer.drain()
            (error,) = await read_frames()
            writer.close()
            await server.shutdown()
            return error

        error = asyncio.run(run())
        assert error["type"] == "error"
        assert error["code"] == "too-large"

    def test_bad_query_payloads_get_typed_errors(self, vectors):
        async def run():
            database = Database(vectors, access="scan")
            server = make_server(database)
            await server.start()
            _, writer, read_frames = await _raw_connect(server)
            writer.write(encode_frame({"type": "hello", "protocol": 1}))
            await writer.drain()
            await read_frames()
            for payload in (
                {"id": 1, "query": [], "qtype": qtype_to_wire(knn_query(3))},
                {"id": 2, "query": "nope", "qtype": qtype_to_wire(knn_query(3))},
                {"id": 3, "query": [0.1] * 6, "qtype": {"kind": 7}},
                {"query": [0.1] * 6, "qtype": qtype_to_wire(knn_query(3))},
            ):
                writer.write(encode_frame({"type": "submit", **payload}))
            await writer.drain()
            errors = await read_frames(4)
            writer.close()
            await server.shutdown()
            return errors

        errors = asyncio.run(run())
        assert [e["type"] for e in errors] == ["error"] * 4
        assert {e["code"] for e in errors} == {"bad-query"}

    def test_degraded_answers_stream_with_completeness(self, vectors):
        queries = [vectors[i] for i in (3, 101, 256, 430, 599, 77)]

        async def run():
            database = Database(
                vectors, access="xtree", block_size=2048, fault_plan=crash_plan()
            )
            server = make_server(database, block_target=3, max_block=6)
            await server.start()
            client = await QueryClient.connect(*server.address)
            futures = [
                await client.submit(obj, knn_query(5), stream=True)
                for obj in queries
            ]
            await client.bye()
            results = await asyncio.gather(*futures)
            await server.shutdown()
            return results

        results = asyncio.run(run())
        degraded = [r for r in results if r.degraded]
        assert degraded, "crash plan should degrade at least one ticket"
        for result in degraded:
            assert result.completeness is not None
            assert 0.0 <= result.completeness < 1.0
            # Def. 4 partial answers were streamed frame by frame.
            assert result.streamed == len(result.answers)

    def test_stats_and_retire(self, vectors):
        async def run():
            database = Database(vectors, access="xtree")
            server = make_server(database, block_target=64, max_block=64)
            await server.start()
            client = await QueryClient.connect(*server.address)
            await client.submit(vectors[0], knn_query(3))
            stats = await client.stats()
            await client.retire(1)
            stats_after = await client.stats()
            await client.bye()
            await server.shutdown()
            return stats, stats_after

        stats, stats_after = asyncio.run(run())
        assert stats["type"] == "stats"
        assert stats["inflight"] == 1
        assert stats_after["inflight"] == 0

    def test_net_metrics_reach_the_observer(self, vectors):
        from repro.obs import Observer

        async def run():
            observer = Observer(trace=False)
            database = Database(vectors, access="xtree", observer=observer)
            # block_target=1: with the pump off, the lone closed-loop
            # ask below must flush on occupancy, not on a deadline.
            server = make_server(database, block_target=1)
            await server.start()
            client = await QueryClient.connect(*server.address)
            await client.ask(vectors[0], knn_query(3))
            await client.bye()
            await server.shutdown()
            return observer.metrics.snapshot()

        snapshot = asyncio.run(run())
        counters = snapshot["counters"]
        assert counters["service.net.connections.opened"] == 1
        assert counters["service.net.submits"] == 1
        assert counters["service.net.results"] == 1
        assert counters["service.net.frames.in"] >= 3
        assert counters["service.net.bytes.out"] > 0


# ----------------------------------------------------------------------
# Load generator
# ----------------------------------------------------------------------


class TestLoadgen:
    def test_trace_record_is_seeded_and_round_trips(self, tmp_path):
        a = record_trace(40, rate=300.0, n_clients=4, objects=500, mix=True)
        b = record_trace(40, rate=300.0, n_clients=4, objects=500, mix=True)
        assert [r.offset for r in a.records] == [r.offset for r in b.records]
        assert [r.db_index for r in a.records] == [
            r.db_index for r in b.records
        ]
        path = tmp_path / "trace.jsonl"
        save_trace(a, str(path))
        back = load_trace(str(path))
        assert back.meta["rate"] == 300.0
        assert back.records == a.records

    def test_load_trace_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "not_a_trace.jsonl"
        path.write_text('{"schema": "something-else"}\n')
        with pytest.raises(ValueError):
            load_trace(str(path))

    def test_arrivals_follow_the_offered_rate(self):
        trace = record_trace(2000, rate=1000.0, objects=500)
        # Mean inter-arrival of a Poisson process at 1000 q/s is 1 ms.
        mean_gap = trace.duration / len(trace)
        assert 0.8e-3 < mean_gap < 1.2e-3

    def test_wire_replay_matches_in_process(self, tmp_path):
        trace = record_trace(
            30, rate=1000.0, n_clients=3, objects=500, k=4, mix=True
        )
        reference, ref_report = replay_in_process(trace, access="xtree")
        assert ref_report.completed == 30

        async def run():
            database = Database(trace_dataset(trace), access="xtree")
            scheduler = database.serve(
                block_target=8, max_block=32, max_wait=16, order="fifo"
            )
            server = QueryServer(scheduler, poll_interval=0)
            await server.start()
            host, port = server.address
            answers, report = await replay_over_wire(
                trace, host, port, speed=0.0, stream=True
            )
            await server.shutdown()
            return answers, report

        answers, report = asyncio.run(run())
        assert report.completed == 30 and report.shed == 0
        assert compare_answers(answers, reference) == []
        assert len(report.latencies) == 30
        assert report.ttfas, "streamed replay must record TTFA"

    def test_report_snapshot_feeds_the_slo_engine(self):
        from repro.obs import evaluate_slos
        from repro.obs.slo import SLOObjective

        trace = record_trace(20, rate=500.0, objects=500)
        _, report = replay_in_process(trace, access="scan")
        snapshot = report.snapshot()
        results = evaluate_slos(
            [
                SLOObjective(
                    name="latency",
                    kind="latency",
                    metric="service.client_latency.seconds",
                    threshold=10.0,
                    target=0.5,
                ),
                SLOObjective(
                    name="completeness",
                    kind="completeness",
                    threshold=0.9,
                    target=0.9,
                ),
            ],
            snapshot,
        )
        assert all(result.status == "ok" for result in results)

    def test_compare_answers_skips_degraded_and_shed(self):
        from repro.core.answers import Answer

        wire = [[Answer(1, 0.5)], None, [Answer(9, 9.9)]]
        reference = [[Answer(1, 0.5)], [Answer(2, 0.2)], [Answer(3, 0.3)]]
        assert compare_answers(wire, reference, skip=[False, False, True]) == []
        assert compare_answers(wire, reference) == [2]
        with pytest.raises(ValueError):
            compare_answers(wire[:2], reference)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


def _repro_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return env


class TestCLI:
    def test_loadgen_record_then_verify_in_process(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        bench_path = tmp_path / "bench.json"
        record = subprocess.run(
            [
                sys.executable, "-m", "repro", "loadgen",
                "--record", str(trace_path),
                "--queries", "40", "--rate", "600", "--objects", "600",
                "--mix",
            ],
            capture_output=True, text=True, env=_repro_env(), timeout=300,
        )
        assert record.returncode == 0, record.stdout + record.stderr
        replay = subprocess.run(
            [
                sys.executable, "-m", "repro", "loadgen",
                "--trace", str(trace_path), "--in-process", "--verify",
                "--bench-out", str(bench_path),
            ],
            capture_output=True, text=True, env=_repro_env(), timeout=300,
        )
        assert replay.returncode == 0, replay.stdout + replay.stderr
        assert "byte-identical" in replay.stdout
        payload = json.loads(bench_path.read_text())
        assert payload["benchmark"] == "net"
        assert payload["rows"][0]["completed"] == 40

    def test_serve_sigint_mid_stream_flushes_and_exits_130(self, tmp_path):
        """Regression: SIGINT in the demo loop used to kill the process
        mid-stream with exports unwritten; now it retires open sessions
        and flushes the trace/timeline files before exiting 130."""
        metrics_path = tmp_path / "metrics.json"
        timeline_path = tmp_path / "timeline.jsonl"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--objects", "20000", "--clients", "8",
                "--queries-per-client", "2000",
                "--metrics-out", str(metrics_path),
                "--timeline", str(timeline_path),
            ],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=_repro_env(),
        )
        try:
            time.sleep(1.5)
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=300)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 130, out
        assert "interrupted" in out
        assert metrics_path.exists(), out
        assert timeline_path.exists(), out
        # The flushed snapshot is valid JSON with service metrics in it.
        snapshot = json.loads(metrics_path.read_text())
        assert "counters" in snapshot

    def test_serve_listen_loadgen_round_trip(self, tmp_path):
        """End-to-end over a real socket: serve --listen in a child
        process, loadgen --connect --verify against it, SIGTERM drains
        and exits 0."""
        trace_path = tmp_path / "trace.jsonl"
        record = subprocess.run(
            [
                sys.executable, "-m", "repro", "loadgen",
                "--record", str(trace_path),
                "--queries", "30", "--rate", "800", "--objects", "600",
            ],
            capture_output=True, text=True, env=_repro_env(), timeout=300,
        )
        assert record.returncode == 0, record.stdout + record.stderr
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--listen", "127.0.0.1:0", "--objects", "600",
                "--poll-interval", "0",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=_repro_env(),
        )
        try:
            port = None
            deadline = time.time() + 120
            assert server.stdout is not None
            while time.time() < deadline:
                line = server.stdout.readline()
                if line.startswith("listening on "):
                    port = int(line.split()[2].rsplit(":", 1)[1])
                    break
            assert port, "server never reported its address"
            replay = subprocess.run(
                [
                    sys.executable, "-m", "repro", "loadgen",
                    "--trace", str(trace_path),
                    "--connect", f"127.0.0.1:{port}",
                    "--stream", "--verify",
                ],
                capture_output=True, text=True, env=_repro_env(), timeout=300,
            )
            assert replay.returncode == 0, replay.stdout + replay.stderr
            assert "byte-identical" in replay.stdout
            server.send_signal(signal.SIGTERM)
            out = server.stdout.read()
            assert server.wait(timeout=60) == 0
            assert "served 30 results" in out
        finally:
            if server.poll() is None:
                server.kill()
