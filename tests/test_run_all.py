"""Tests for the report generator and the mining-speedup harness."""

import dataclasses

import pytest

from repro.experiments import ExperimentConfig, run_mining_speedup
from repro.experiments.run_all import run_all


@pytest.fixture(scope="module")
def tiny_config():
    # Even smaller than small(): keeps the full run_all under ~a minute.
    return dataclasses.replace(
        ExperimentConfig.small(),
        astronomy_n=1500,
        image_n=800,
        n_queries=10,
        m_values=(1, 5),
        server_counts=(1, 2),
        parallel_base_m=5,
        k_values=(1, 5),
    )


class TestRunAll:
    def test_writes_markdown_report(self, tiny_config, tmp_path, capsys):
        out = tmp_path / "EXPERIMENTS.md"
        assert run_all(tiny_config, str(out)) == 0
        text = out.read_text()
        assert text.startswith("# EXPERIMENTS")
        for figure in ("Figure 7", "Figure 8", "Figure 11", "Figure 12"):
            assert f"### {figure}" in text
        assert "Sec. 6.2" in text
        assert "Sec. 3.3" in text
        # Tables rendered to stdout too.
        assert "Average I/O cost" in capsys.readouterr().out

    def test_no_output_file_is_fine(self, tiny_config, capsys):
        assert run_all(tiny_config, None) == 0
        assert "Figure 10" in capsys.readouterr().out

    def test_metrics_sidecar(self, tiny_config, tmp_path, capsys):
        import json

        sidecar_path = tmp_path / "sweeps.json"
        assert run_all(tiny_config, None, metrics_out=str(sidecar_path)) == 0
        capsys.readouterr()
        sidecar = json.loads(sidecar_path.read_text())
        assert sidecar["config"]["astronomy_n"] == tiny_config.astronomy_n
        # One entry per dataset x access method, one point per m value.
        assert set(sidecar["sweeps"]) == {
            "astronomy/scan", "astronomy/xtree", "image/scan", "image/xtree",
        }
        for sweep in sidecar["sweeps"].values():
            assert set(sweep) == {str(m) for m in tiny_config.m_values}
            for point in sweep.values():
                assert point["sharing_factor"] > 0
                assert 0 <= point["avoidance_hit_rate"] <= 1
                assert point["page_reads"] > 0
        # Scan I/O sharing (Sec. 5.1): page reads shrink ~m-fold.
        scan = sidecar["sweeps"]["astronomy/scan"]
        m_lo, m_hi = min(tiny_config.m_values), max(tiny_config.m_values)
        assert scan[str(m_hi)]["page_reads"] < scan[str(m_lo)]["page_reads"]


class TestMiningSpeedup:
    def test_speedups_with_identical_outputs(self, tiny_config):
        result = run_mining_speedup(tiny_config)
        assert len(result.series) == 3
        for series in result.series:
            single, multiple, speedup = series.values
            assert multiple <= single
            assert speedup == pytest.approx(single / multiple)
