"""Tests for the report generator and the mining-speedup harness."""

import dataclasses

import pytest

from repro.experiments import ExperimentConfig, run_mining_speedup
from repro.experiments.run_all import run_all


@pytest.fixture(scope="module")
def tiny_config():
    # Even smaller than small(): keeps the full run_all under ~a minute.
    return dataclasses.replace(
        ExperimentConfig.small(),
        astronomy_n=1500,
        image_n=800,
        n_queries=10,
        m_values=(1, 5),
        server_counts=(1, 2),
        parallel_base_m=5,
        k_values=(1, 5),
    )


class TestRunAll:
    def test_writes_markdown_report(self, tiny_config, tmp_path, capsys):
        out = tmp_path / "EXPERIMENTS.md"
        assert run_all(tiny_config, str(out)) == 0
        text = out.read_text()
        assert text.startswith("# EXPERIMENTS")
        for figure in ("Figure 7", "Figure 8", "Figure 11", "Figure 12"):
            assert f"### {figure}" in text
        assert "Sec. 6.2" in text
        assert "Sec. 3.3" in text
        # Tables rendered to stdout too.
        assert "Average I/O cost" in capsys.readouterr().out

    def test_no_output_file_is_fine(self, tiny_config, capsys):
        assert run_all(tiny_config, None) == 0
        assert "Figure 10" in capsys.readouterr().out


class TestMiningSpeedup:
    def test_speedups_with_identical_outputs(self, tiny_config):
        result = run_mining_speedup(tiny_config)
        assert len(result.series) == 3
        for series in result.series:
            single, multiple, speedup = series.values
            assert multiple <= single
            assert speedup == pytest.approx(single / multiple)
