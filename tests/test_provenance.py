"""Tests for causal provenance, the plan audit and the SLO engine."""

import json
import math

import numpy as np
import pytest

from repro.core.database import Database
from repro.core.planner import CostFit, QueryPlanner
from repro.core.types import knn_query
from repro.obs import (
    CALIBRATION_DRIFT_GAUGE,
    PREDICTION_ERROR_DISTANCES,
    PREDICTION_ERROR_IO,
    PREDICTION_ERROR_SECONDS,
    Observer,
    PlanAudit,
    QueryCard,
    SLOObjective,
    ancestry,
    build_cards,
    evaluate_slos,
    load_slo_spec,
    render_card,
    render_slo,
)
from repro.obs.provenance import index_spans
from repro.parallel.executor import ParallelDatabase

ALL_ACCESS_METHODS = ["scan", "xtree", "rstar", "mtree", "vafile"]
ALL_ENGINES = ["reference", "vectorized", "batched"]


@pytest.fixture(scope="module")
def vectors():
    return np.random.default_rng(11).random((600, 8))


def _answers_as_tuples(results):
    return [[(a.index, a.distance) for a in result] for result in results]


def _run_blocks(database, vectors, n_queries=12, block=4):
    # warm_start stays off: on a dataset this small the warm-up page
    # alone completes most queries, which would leave no query.drive
    # spans to attribute provenance to.
    queries = [vectors[i] for i in range(n_queries)]
    return database.run_in_blocks(
        queries,
        knn_query(5),
        block_size=block,
        db_indices=list(range(n_queries)),
    )


class TestProvenanceEquivalence:
    """Provenance-grade tracing never changes answers or counters."""

    @pytest.mark.parametrize("access", ALL_ACCESS_METHODS)
    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_traced_run_identical_across_methods_and_engines(
        self, vectors, access, engine
    ):
        plain = Database(vectors, access=access, engine=engine)
        expected = _answers_as_tuples(_run_blocks(plain, vectors))
        observer = Observer(trace=True)
        traced = Database(vectors, access=access, engine=engine, observer=observer)
        observed = _answers_as_tuples(_run_blocks(traced, vectors))
        assert observed == expected
        assert traced.counters.as_dict() == plain.counters.as_dict()
        # The trace actually carries per-query provenance, not just
        # spans.  Not every query drives -- a query fully answered while
        # piggybacking on another driver's pages never takes the wheel
        # -- but every query admits, and someone must have driven.
        cards = build_cards(observer.tracer.records())
        assert len(cards) == 12
        assert all(card.admissions >= 1 for card in cards.values())
        assert any(card.drives >= 1 for card in cards.values())


class TestProcessBackendCausalTree:
    """Worker-process spans stitch into one tree under the block span."""

    def _traced_parallel_run(self, vectors, backend):
        observer = Observer(trace=True, trace_capacity=65_536)
        with ParallelDatabase(
            vectors, n_servers=2, access="scan", observer=observer
        ) as cluster:
            queries = [vectors[i] for i in range(6)]
            run = cluster.multiple_similarity_query(
                queries, knn_query(3), db_indices=list(range(6)), backend=backend
            )
        return observer.tracer.records(), run

    def test_worker_page_spans_reach_the_block_span(self, vectors):
        records, _ = self._traced_parallel_run(vectors, "process")
        worker_pages = [
            r
            for r in records
            if r.get("name") == "page.process" and r.get("server_id") is not None
        ]
        assert worker_pages, "no worker page.process spans absorbed"
        block_spans = {
            r["span_id"]
            for r in records
            if r.get("name") == "parallel.block" and r.get("kind") == "span"
        }
        assert block_spans
        driven = 0
        for page in worker_pages:
            chain = ancestry(records, page["span_id"])
            names = [r["name"] for r in chain]
            # Every worker page walks up through its worker phase span
            # to the coordinator's parallel.block span: the
            # cross-process parent link holds for the whole tree.
            assert {"worker.phase1", "worker.phase2"} & set(names)
            assert any(r["span_id"] in block_spans for r in chain), names
            if "query.drive" in names:
                driven += 1
        # Most pages are processed while some query drives (warm-up
        # pages sit directly under the phase span).
        assert driven > 0

    def test_one_card_per_query_with_both_servers(self, vectors):
        records, _ = self._traced_parallel_run(vectors, "process")
        cards = build_cards(records)
        assert len(cards) == 6
        for card in cards.values():
            # Each declustered half admits the query; it drives only
            # where piggybacking on earlier drivers left it incomplete.
            assert card.admissions == 2
            assert set(card.servers) <= {0, 1}
            assert all(v.server_id in (0, 1) for v in card.pages)
        # Across the workload both servers did attributed drive work --
        # on scan access a single drive per server sweeps every page and
        # completes the whole batch, so two drives is the exact total.
        assert {s for c in cards.values() for s in c.servers} == {0, 1}
        assert sum(c.drives for c in cards.values()) >= 2

    def test_model_backend_produces_equivalent_cards(self, vectors):
        # The model backend runs the identical per-server computation
        # in-process, so its cards agree with the process backend's on
        # everything deterministic (labels, admissions, drives, pages).
        model_records, _ = self._traced_parallel_run(vectors, "model")
        process_records, _ = self._traced_parallel_run(vectors, "process")
        model_cards = build_cards(model_records)
        process_cards = build_cards(process_records)
        assert list(model_cards) == list(process_cards)
        for label, model_card in model_cards.items():
            process_card = process_cards[label]
            assert model_card.admissions == process_card.admissions
            assert model_card.drives == process_card.drives
            assert len(model_card.pages) == len(process_card.pages)

    def test_trace_ids_are_uniform_and_worker_ids_disjoint(self, vectors):
        records, _ = self._traced_parallel_run(vectors, "process")
        trace_ids = {r.get("trace_id") for r in records}
        assert len(trace_ids) == 1 and None not in trace_ids
        by_id, _ = index_spans(records)
        worker_ids = {
            sid for sid, r in by_id.items() if r.get("server_id") is not None
        }
        parent_ids = {
            sid for sid, r in by_id.items() if r.get("server_id") is None
        }
        assert worker_ids and parent_ids
        assert not worker_ids & parent_ids
        assert min(worker_ids) >= 1_000_000_000


class TestQueryCards:
    def test_build_cards_folds_admissions_pages_and_avoidance(self):
        from repro.obs import Tracer

        tracer = Tracer()
        tracer.event("query.admit", query="q-1", kind="knn", slot=0)
        with tracer.span("query.drive", query="q-1"):
            with tracer.span("page.process", page_id=7, engine="batched", batch=3):
                tracer.event("avoidance.try", tries=5, avoided=3, computed=2)
            tracer.event("prefilter.prune", page_id=9, batch=3)
        tracer.event(
            "session.first_answer", query="q-1", seconds=0.25, pages=1, early=True
        )
        cards = build_cards(tracer.records())
        assert list(cards) == ["q-1"]
        card = cards["q-1"]
        assert card.admissions == 1
        assert card.drives == 1
        assert [v.page_id for v in card.pages] == [7]
        assert [p.page_id for p in card.pruned] == [9]
        assert card.pruned[0].mode == "exact"
        assert card.avoidance_tries == 5
        assert card.avoided_calculations == 3
        assert card.computed_calculations == 2
        assert card.avoidance_rate == pytest.approx(0.6)
        assert card.first_answer == {"seconds": 0.25, "pages": 1, "early": True}

    def test_unattributed_records_build_no_cards(self):
        from repro.obs import Tracer

        tracer = Tracer()
        with tracer.span("block.flush", size=4):
            tracer.event("page.read", page_id=1)
        assert build_cards(tracer.records()) == {}

    def test_render_and_summary_round_trip(self):
        card = QueryCard(query="('serve', 0)", kind="knn")
        text = render_card(card)
        assert "('serve', 0)" in text
        assert "avoidance" in text
        payload = json.dumps(card.summary())
        assert json.loads(payload)["query"] == "('serve', 0)"


class TestPlanAudit:
    def _fit(self):
        return CostFit(
            access="scan",
            shared_seconds=1.0,
            marginal_seconds=0.1,
            shared_io_pages=40.0,
            marginal_io_pages=1.0,
            shared_distances=600.0,
            marginal_distances=10.0,
        )

    def test_audit_emits_prediction_error_histograms(self, vectors):
        observer = Observer(trace=False)
        planner = QueryPlanner(vectors, candidates=("scan",), probe_queries=4)
        plan = planner.plan(8, knn_query(5), max_block_size=4)
        database = planner.database_for(plan)
        database.attach_observer(observer)
        scheduler = database.serve(block_target=plan.block_size, max_block=4)
        scheduler.replan(plan.fits)
        assert scheduler.audit is not None
        for i in range(8):
            scheduler.submit(vectors[i], knn_query(5))
        scheduler.drain()
        assert scheduler.audit.blocks_audited > 0
        histograms = observer.metrics.snapshot()["histograms"]
        for name in (
            PREDICTION_ERROR_SECONDS,
            PREDICTION_ERROR_IO,
            PREDICTION_ERROR_DISTANCES,
        ):
            assert histograms[name]["count"] > 0, name
        gauges = observer.metrics.snapshot()["gauges"]
        assert CALIBRATION_DRIFT_GAUGE in gauges
        assert gauges[CALIBRATION_DRIFT_GAUGE] > 0.0

    def test_component_fits_probe_nonzero(self, vectors):
        planner = QueryPlanner(vectors, candidates=("scan",), probe_queries=4)
        plan = planner.plan(8, knn_query(5))
        fit = plan.fits[0]
        assert fit.pages_per_query(1) > 0.0
        assert fit.distances_per_query(1) > 0.0
        # Amortisation shape: per-query components fall with block size.
        assert fit.pages_per_query(8) <= fit.pages_per_query(1)

    def test_end_block_tracks_ratio_against_counters(self):
        from repro.costmodel import Counters

        class _Model:
            def total_seconds(self, delta):
                return delta.page_reads * 0.01

        audit = PlanAudit(self._fit(), _Model())
        counters = Counters()
        audit.begin_block(counters)
        counters.sequential_page_reads += 20
        counters.distance_calculations += 300
        audit.end_block(counters, block_size=2)
        assert audit.blocks_audited == 1
        # observed 10 pages/query vs predicted 40/2 + 1 = 21.
        assert audit.drift_io == pytest.approx(10 / 21)
        assert audit.samples == [(2, 0.1)]

    def test_calibrated_refit_moves_the_knee(self):
        audit = PlanAudit(self._fit(), cost_model=None)
        # Observed curve 2.0/m + 0.05: twice the shared cost, half the
        # marginal -- a pure rescale could not fit both points.
        for m, y in [(1, 2.05), (4, 0.55), (1, 2.05), (4, 0.55)]:
            audit.samples.append((m, y))
        refit = audit.calibrated()
        assert refit.shared_seconds == pytest.approx(2.0)
        assert refit.marginal_seconds == pytest.approx(0.05)

    def test_calibrated_scales_when_underdetermined(self):
        audit = PlanAudit(self._fit(), cost_model=None)
        audit.drift_seconds = 2.0
        audit.samples.append((4, 0.7))  # one block size only: no refit
        scaled = audit.calibrated()
        assert scaled.shared_seconds == pytest.approx(2.0)
        assert scaled.marginal_seconds == pytest.approx(0.2)

    def test_degraded_blocks_do_not_feed_the_audit(self, vectors):
        # A crash-heavy plan degrades sessions; those blocks are excluded
        # so fault noise cannot skew calibration.
        from repro.faults import FaultPlan

        observer = Observer(trace=False)
        database = Database(vectors, access="scan", observer=observer)
        database.inject_faults(
            FaultPlan.from_dict(
                {
                    "seed": 5,
                    "sites": {
                        "server.*": {
                            "kinds": ["server_crash"],
                            "probability": 1.0,
                        }
                    },
                }
            )
        )
        scheduler = database.serve(block_target=2, max_block=2)
        scheduler.replan([self._fit()])
        for i in range(4):
            scheduler.submit(vectors[i], knn_query(3))
        scheduler.drain()
        if scheduler.degraded_sessions:
            assert scheduler.audit.blocks_audited < scheduler.blocks_flushed

    def test_summary_is_json_ready(self):
        audit = PlanAudit(self._fit(), cost_model=None)
        payload = json.dumps(audit.summary())
        assert json.loads(payload)["blocks_audited"] == 0


class TestSLOEngine:
    def _snapshot(self, good, bad, completed=0, degraded_hist=None):
        buckets = {}
        if good:
            buckets["0.01"] = good
        if bad:
            buckets["10"] = bad
        histograms = {
            "service.client_latency.seconds": {
                "count": good + bad,
                "sum": 1.0,
                "buckets": buckets,
            }
        }
        counters = {"service.tickets.completed": completed}
        if degraded_hist is not None:
            histograms["service.completeness"] = degraded_hist
        return {"counters": counters, "histograms": histograms}

    def test_latency_objective_conservative_buckets(self):
        objective = SLOObjective(
            name="lat",
            kind="latency",
            metric="service.client_latency.seconds",
            threshold=1.0,
            target=0.9,
        )
        ok = evaluate_slos([objective], self._snapshot(95, 5))[0]
        assert ok.compliance == pytest.approx(0.95)
        assert ok.burn_rate == pytest.approx(0.5)
        assert ok.status == "ok" and ok.ok
        breach = evaluate_slos([objective], self._snapshot(80, 20))[0]
        assert breach.status == "breach" and not breach.ok
        assert breach.burn_rate == pytest.approx(2.0)

    def test_no_data_is_not_a_breach(self):
        objective = SLOObjective(
            name="lat", kind="latency", metric="missing", threshold=1.0, target=0.9
        )
        result = evaluate_slos([objective], {"histograms": {}})[0]
        assert result.compliance is None
        assert result.status == "no-data" and result.ok

    def test_completeness_objective_burns_by_shortfall(self):
        objective = SLOObjective(
            name="complete", kind="completeness", threshold=0.95, target=0.8
        )
        snapshot = self._snapshot(
            0,
            0,
            completed=18,
            degraded_hist={"count": 2, "sum": 1.0, "buckets": {"0.5": 2}},
        )
        result = evaluate_slos([objective], snapshot)[0]
        assert result.compliance == pytest.approx(0.9)
        assert result.mean_completeness == pytest.approx(0.95)
        assert result.status == "ok"
        # Same traffic but a stricter mean threshold breaches.
        strict = SLOObjective(
            name="strict", kind="completeness", threshold=0.99, target=0.8
        )
        assert evaluate_slos([strict], snapshot)[0].status == "breach"

    def test_spec_validation_rejects_bad_input(self):
        with pytest.raises(ValueError):
            SLOObjective(name="x", kind="latency", metric="m", threshold=1, target=1.5)
        with pytest.raises(ValueError):
            SLOObjective(name="x", kind="nope", metric="m", threshold=1, target=0.9)
        with pytest.raises(ValueError):
            load_slo_spec({"objectives": []})
        with pytest.raises(ValueError):
            load_slo_spec(
                {"objectives": [{"kind": "latency", "metric": "m",
                                 "threshold": 1, "target": 0.9, "oops": 1}]}
            )

    def test_load_yaml_subset_and_json_specs(self, tmp_path):
        yaml_path = tmp_path / "slo.yml"
        yaml_path.write_text(
            "# comment\n"
            "objectives:\n"
            "  - name: lat\n"
            "    kind: latency\n"
            "    metric: service.client_latency.seconds\n"
            "    threshold: 2.5\n"
            "    target: 0.95\n"
            "  - name: complete\n"
            "    kind: completeness\n"
            "    threshold: 0.99\n"
            "    target: 0.9\n"
        )
        objectives = load_slo_spec(str(yaml_path))
        assert [o.name for o in objectives] == ["lat", "complete"]
        assert objectives[0].threshold == 2.5
        json_path = tmp_path / "slo.json"
        json_path.write_text(
            json.dumps(
                {
                    "objectives": [
                        {
                            "name": "lat",
                            "kind": "latency",
                            "metric": "m",
                            "threshold": 2.5,
                            "target": 0.95,
                        }
                    ]
                }
            )
        )
        assert load_slo_spec(str(json_path))[0].threshold == 2.5

    def test_repo_ci_spec_loads(self):
        objectives = load_slo_spec("ci/slo.yml")
        assert len(objectives) == 3
        kinds = {o.kind for o in objectives}
        assert kinds == {"latency", "completeness"}

    def test_render_slo_reports_breach_count(self):
        objective = SLOObjective(
            name="lat",
            kind="latency",
            metric="service.client_latency.seconds",
            threshold=1.0,
            target=0.9,
        )
        text = render_slo(evaluate_slos([objective], self._snapshot(80, 20)))
        assert "breach" in text and "1 breached" in text


class TestExplainCLI:
    def test_explain_renders_a_complete_card_on_process_backend(self, capsys):
        from repro.cli import main

        code = main(
            ["explain", "0", "--objects", "600", "--queries", "3",
             "--backend", "process"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "query " in out
        # Worker-process provenance made it into the rendered card.
        assert "servers " in out and "[server " in out
        assert "avoidance" in out

    def test_explain_json_and_range_errors(self, capsys):
        from repro.cli import main

        code = main(
            ["explain", "99", "--objects", "600", "--queries", "3",
             "--backend", "model"]
        )
        assert code == 2
        assert "out of range" in capsys.readouterr().err


class TestEmptyHistogramRendering:
    def test_report_renders_nan_quantiles_as_dash(self):
        from repro.obs import summarize_metrics

        snapshot = {
            "collected": {},
            "counters": {},
            "gauges": {},
            "histograms": {
                "phase.empty.seconds": {
                    "count": 0,
                    "sum": 0.0,
                    "min": 0.0,
                    "max": 0.0,
                    "mean": 0.0,
                    "p50": math.nan,
                    "p95": math.nan,
                    "p99": math.nan,
                    "buckets": {},
                }
            },
        }
        text = summarize_metrics(snapshot)
        assert "-" in text
        assert "nan" not in text.lower()

    def test_prediction_error_not_formatted_as_latency(self):
        from repro.obs import summarize_metrics

        snapshot = {
            "collected": {},
            "counters": {},
            "gauges": {},
            "histograms": {
                PREDICTION_ERROR_SECONDS: {
                    "count": 3,
                    "sum": 3.6,
                    "min": 1.0,
                    "max": 1.4,
                    "mean": 1.2,
                    "p50": 1.2,
                    "p95": 1.4,
                    "p99": 1.4,
                    "buckets": {"1.78": 3},
                }
            },
        }
        text = summarize_metrics(snapshot)
        # Ratios render as plain numbers, never as "ms"/"us" latencies.
        assert "ms" not in text and "us" not in text
