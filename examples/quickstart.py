"""Quickstart: single vs. multiple similarity queries on a metric database.

Builds a small clustered vector database, runs the same k-NN workload
once as independent single queries (Fig. 1 of the paper) and once as one
multiple similarity query (Fig. 4), and prints the modelled I/O and CPU
cost of both -- the paper's headline effect in ~60 lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Database, knn_query
from repro.workloads import make_gaussian_mixture, sample_database_queries


def main() -> None:
    # A 16-d clustered dataset standing in for feature vectors.
    dataset = make_gaussian_mixture(
        n=20_000, dimension=16, n_clusters=40, cluster_std=0.03, seed=0
    )
    database = Database(dataset, access="xtree")
    print("database:", database.summary())

    # The workload: 50 k-NN queries for random database objects.
    query_indices = sample_database_queries(dataset, 50, seed=1)
    queries = [dataset[i] for i in query_indices]
    qtype = knn_query(10)

    # --- one query at a time (traditional query processing) ----------
    with database.measure() as single:
        single_answers = [database.similarity_query(q, qtype) for q in queries]

    # --- the same workload as one multiple similarity query ----------
    database.cold()
    with database.measure() as multi:
        multi_answers = database.run_in_blocks(
            queries,
            qtype,
            block_size=len(queries),
            db_indices=query_indices,
            warm_start=True,
        )

    # Same answers either way.
    for a, b in zip(single_answers, multi_answers):
        assert {x.index for x in a} == {x.index for x in b}

    def report(label, run):
        counters = run.counters
        print(
            f"{label:>18}: io={run.io_seconds:7.3f}s cpu={run.cpu_seconds:7.3f}s "
            f"total={run.total_seconds:7.3f}s  "
            f"(pages={counters.page_reads}, dists={counters.distance_calculations:,}, "
            f"avoided={counters.avoided_calculations:,})"
        )

    print(f"\nworkload: {len(queries)} x {qtype.kind} (k=10)")
    report("single queries", single)
    report("multiple query", multi)
    speedup = single.total_seconds / multi.total_seconds
    print(f"\nspeed-up from batching: {speedup:.1f}x (identical answers)")

    nn = multi_answers[0]
    print(f"\nfirst query's neighbours: {[(a.index, round(a.distance, 4)) for a in nn[:5]]}")


if __name__ == "__main__":
    main()
