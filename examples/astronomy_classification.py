"""Simultaneous classification of newly observed stars (paper Sec. 3.2/6).

The paper's astronomy scenario: every night a telescope observes new
stars; the next day each is assigned to a spectral class by a k-NN
classifier over the existing catalogue.  All the night's queries are
known upfront, which makes this the ideal case for a multiple similarity
query -- and the workload of the paper's Figures 7-10 (astronomy side).

Run:  python examples/astronomy_classification.py
"""

import numpy as np

from repro import Database
from repro.mining import knn_classify
from repro.workloads import make_astronomy, sample_database_queries


def main() -> None:
    catalogue = make_astronomy(n=30_000, seed=0)
    database = Database(catalogue, access="xtree")
    print("catalogue:", database.summary())

    # Tonight's observations: 200 objects to classify (drawn from the
    # catalogue so the true class is known and accuracy measurable).
    observations = sample_database_queries(catalogue, 200, seed=7)

    for block_size, label in [(1, "single queries"), (200, "one multiple query")]:
        database.cold()
        with database.measure() as run:
            predictions = knn_classify(
                database,
                observations,
                k=10,
                block_size=block_size,
                exclude_self=True,
            )
        truth = [catalogue.labels[i] for i in observations]
        accuracy = float(np.mean([p == t for p, t in zip(predictions, truth)]))
        print(
            f"{label:>20}: accuracy={accuracy:5.1%}  "
            f"modelled cost: io={run.io_seconds:6.2f}s "
            f"cpu={run.cpu_seconds:6.2f}s total={run.total_seconds:6.2f}s"
        )

    print(
        "\nBatching the night's classifications into one multiple similarity "
        "query answers the same workload at a fraction of the cost."
    )


if __name__ == "__main__":
    main()
