"""General metric data: WWW sessions under edit distance (paper Sec. 2).

Metric databases are more general than vector databases: here the
objects are URL click-paths, compared by Levenshtein edit distance -- no
vector space exists, so the X-tree does not apply, but the M-tree and
the whole multiple-similarity-query machinery do.

Run:  python examples/web_sessions.py
"""

from collections import Counter

from repro import Database, GenericDataset, knn_query, range_query
from repro.workloads import make_web_sessions


def main() -> None:
    sessions = make_web_sessions(n=600, seed=0)
    database = Database(
        sessions, metric="levenshtein", access="mtree", engine="reference"
    )
    print("session database:", database.summary())

    # Which sessions resemble a suspicious click-path?
    probe = "/shop/1/shop/2/help/3"
    answers = database.similarity_query(probe, knn_query(5))
    print(f"\nsessions most similar to {probe!r}:")
    for answer in answers:
        print(f"  edit distance {answer.distance:4.0f}: {sessions[answer.index]}")

    # Batch analysis: the nearest neighbours of many sessions at once,
    # e.g. to find each session's behavioural cohort.
    query_indices = list(range(40))
    queries = [sessions[i] for i in query_indices]
    with database.measure() as single:
        for query in queries:
            database.similarity_query(query, knn_query(8))
    database.cold()
    with database.measure() as multi:
        cohorts = database.multiple_similarity_query(queries, knn_query(8))
    print(
        f"\n40 cohort queries: single={single.total_seconds:.2f}s "
        f"multiple={multi.total_seconds:.2f}s "
        f"({single.total_seconds / multi.total_seconds:.1f}x)"
    )

    # Do cohorts align with the hidden user profiles?
    aligned = 0
    for query_index, cohort in zip(query_indices, cohorts):
        votes = Counter(int(sessions.labels[a.index]) for a in cohort)
        if votes.most_common(1)[0][0] == int(sessions.labels[query_index]):
            aligned += 1
    print(f"cohort majority matches the session's own profile: {aligned}/40")

    # Range queries work identically on metric data.
    near_duplicates = database.similarity_query(sessions[0], range_query(3.0))
    print(f"\nsessions within edit distance 3 of session 0: {len(near_duplicates)}")


if __name__ == "__main__":
    main()
