"""Manual data exploration by concurrent users (paper Sec. 6, image DB).

Several users browse an image database simultaneously: each looks at an
image, the system shows its k most similar images, the user clicks one,
and so on.  The DBMS prefetches the neighbourhoods of *all* current
answers in one multiple similarity query per round, so every click is
served from the buffer -- the paper's "highly dependent queries"
workload.

Run:  python examples/image_exploration.py
"""

from repro import Database
from repro.mining import simulate_concurrent_exploration
from repro.workloads import make_image_histograms


def main() -> None:
    images = make_image_histograms(n=8_000, seed=0)
    database = Database(images, access="xtree")
    print("image database:", database.summary())

    n_users, k, n_rounds = 5, 8, 4

    # Prefetching each round as one multiple similarity query...
    database.cold()
    with database.measure() as batched:
        trace = simulate_concurrent_exploration(
            database, n_users=n_users, k=k, n_rounds=n_rounds, seed=3
        )

    # ... versus the same session with one query at a time.
    database.cold()
    with database.measure() as single:
        simulate_concurrent_exploration(
            database, n_users=n_users, k=k, n_rounds=n_rounds, seed=3, block_size=1
        )

    print(
        f"\nsession: {n_users} users x {n_rounds} rounds, k={k} "
        f"({trace.queries_issued} k-NN queries total)"
    )
    print(
        f"   one query at a time: io={single.io_seconds:6.2f}s "
        f"cpu={single.cpu_seconds:6.2f}s total={single.total_seconds:6.2f}s"
    )
    print(
        f"  prefetched per round: io={batched.io_seconds:6.2f}s "
        f"cpu={batched.cpu_seconds:6.2f}s total={batched.total_seconds:6.2f}s"
    )
    print(
        f"\nspeed-up: {single.total_seconds / batched.total_seconds:.1f}x "
        "-- dependent queries share almost all their pages"
    )

    print("\nuser 0 browsed:", " -> ".join(str(i) for i in trace.user_paths[0]))
    same_cluster = {
        int(images.labels[i]) for i in trace.user_paths[0]
    }
    print(f"(scene clusters visited by user 0: {sorted(same_cluster)})")


if __name__ == "__main__":
    main()
