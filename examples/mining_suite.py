"""The remaining ExploreNeighborhoods instances on one dataset (Sec. 3.2).

Runs spatial association rules, spatial trend detection and proximity
analysis — the three mining instances not covered by the other examples
— over a labelled clustered dataset, all through the multiple-query
machinery.

Run:  python examples/mining_suite.py
"""

import numpy as np

from repro import Database
from repro.mining import (
    dbscan,
    detect_trends,
    proximity_analysis,
    spatial_association_rules,
)
from repro.workloads import make_gaussian_mixture


def main() -> None:
    dataset = make_gaussian_mixture(
        n=5_000, dimension=6, n_clusters=8, cluster_std=0.03, seed=11
    )
    database = Database(dataset, access="xtree")
    print("database:", database.summary())

    # --- neighbourhood association rules (Koperski & Han style) ------
    print("\n== association rules: which types co-occur with type 0? ==")
    rules = spatial_association_rules(
        database, reference_type=0, eps=0.25, min_support=0.0, min_confidence=0.2
    )
    for rule in rules[:4]:
        print(f"  {rule}")
    if not rules:
        print("  (no rule above the confidence threshold)")

    # --- spatial trend detection --------------------------------------
    print("\n== trend detection: attribute change when moving away ==")
    # Synthesise an attribute with a real spatial trend: it grows with
    # the first feature, so paths along that axis show positive slopes.
    attribute = dataset.vectors[:, 0] * 50.0 + np.random.default_rng(0).normal(
        0, 0.5, len(dataset)
    )
    result = detect_trends(
        database, start=0, attribute=attribute, n_paths=8, path_length=6, k=10
    )
    strong = result.significant_paths(min_r_squared=0.5)
    print(
        f"  {len(result.paths)} neighbourhood paths from object 0; "
        f"{len(strong)} show a significant linear trend"
    )
    print(f"  mean slope: {result.mean_slope:+.2f} attribute units per distance unit")

    # --- proximity analysis -------------------------------------------
    print("\n== proximity analysis: what surrounds a discovered cluster? ==")
    clustering = dbscan(database, eps=0.08, min_pts=8, batch_size=32)
    members = clustering.cluster_members(0)[:20]
    report = proximity_analysis(database, members, top_k=10)
    print(f"  cluster 0 sample: {len(members)} members")
    print(
        "  top outsiders:",
        [(i, round(d, 3)) for i, d in report.closest[:5]],
    )
    print(f"  features shared by most of the top-10: {len(report.common_features)}")
    for feature in report.common_features[:3]:
        lo, hi = feature.bucket_range
        print(
            f"    dimension {feature.dimension}: {feature.fraction:.0%} fall in "
            f"[{lo:.2f}, {hi:.2f}]"
        )


if __name__ == "__main__":
    main()
