"""Density-based clustering (DBSCAN) over multiple similarity queries.

DBSCAN is the paper's flagship ExploreNeighborhoods instance (Sec. 3.2):
it repeatedly retrieves eps-neighbourhoods of objects found by previous
queries.  The multiple-query form hands the pending seed list to the
DBMS, which prefetches partial answers while completing the first seed
-- same clustering, far fewer page reads.

Run:  python examples/dbscan_clustering.py
"""

import numpy as np

from repro import Database
from repro.mining import dbscan
from repro.workloads import make_gaussian_mixture


def main() -> None:
    dataset = make_gaussian_mixture(
        n=8_000, dimension=8, n_clusters=12, cluster_std=0.02, seed=5
    )
    database = Database(dataset, access="xtree")
    print("database:", database.summary())

    eps, min_pts = 0.06, 8
    results = {}
    for batch_size, label in [(1, "single queries"), (32, "multiple queries")]:
        database.cold()
        with database.measure() as run:
            result = dbscan(database, eps=eps, min_pts=min_pts, batch_size=batch_size)
        results[label] = (result, run)
        noise = int(np.sum(result.labels == -1))
        print(
            f"{label:>18}: {result.n_clusters} clusters, {noise} noise objects, "
            f"{result.queries_issued} range queries | "
            f"io={run.io_seconds:6.2f}s cpu={run.cpu_seconds:6.2f}s "
            f"total={run.total_seconds:6.2f}s"
        )

    single_labels = results["single queries"][0].labels
    multi_labels = results["multiple queries"][0].labels
    assert np.array_equal(single_labels, multi_labels), "clusterings must match"

    single_run = results["single queries"][1]
    multi_run = results["multiple queries"][1]
    print(
        f"\nidentical clustering, {single_run.total_seconds / multi_run.total_seconds:.1f}x "
        "cheaper with the multiple-query transformation (Sec. 3.3)"
    )

    # How well did DBSCAN recover the generated structure?
    result = results["multiple queries"][0]
    pure = 0
    for cluster_id in range(result.n_clusters):
        members = result.cluster_members(cluster_id)
        true = dataset.labels[members]
        if len(set(true.tolist())) == 1:
            pure += 1
    print(f"{pure}/{result.n_clusters} discovered clusters are pure generator clusters")


if __name__ == "__main__":
    main()
