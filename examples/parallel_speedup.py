"""Parallel multiple similarity queries on a shared-nothing cluster (Sec. 5.3).

The data is declustered over s simulated servers; every server answers
the same multiple similarity query on its local partition and the
answers are merged.  Because s servers also have s times the memory, the
block size grows to m * s -- which is what can push the speed-up beyond
the server count.

Run:  python examples/parallel_speedup.py
"""

from repro import Database, knn_query
from repro.core.multi_query import run_in_blocks
from repro.parallel import ParallelDatabase
from repro.workloads import make_astronomy, sample_database_queries


def main() -> None:
    dataset = make_astronomy(n=30_000, seed=0)
    base_m, k = 50, 10

    # Sequential baseline: blocks of base_m on one machine.
    database = Database(dataset, access="xtree")
    base_queries = sample_database_queries(dataset, base_m, seed=1)
    with database.measure() as baseline:
        run_in_blocks(
            database,
            [dataset[i] for i in base_queries],
            knn_query(k),
            block_size=base_m,
            db_indices=base_queries,
            warm_start=True,
        )
    base_cost = baseline.total_seconds / base_m
    print(f"sequential multiple query (m={base_m}): {base_cost * 1000:6.2f} ms/query")

    print(f"\n{'s':>3} {'m = s*base':>10} {'ms/query':>10} {'speed-up':>9} {'vs linear':>10}")
    for n_servers in (1, 2, 4, 8):
        n_queries = base_m * n_servers
        query_indices = sample_database_queries(dataset, n_queries, seed=2)
        cluster = ParallelDatabase(dataset, n_servers=n_servers, access="xtree")
        run = cluster.multiple_similarity_query(
            [dataset[i] for i in query_indices],
            knn_query(k),
            db_indices=query_indices,
        )
        per_query = run.elapsed_seconds / n_queries
        speedup = base_cost / per_query
        shape = "super-linear" if speedup > n_servers else "sub-linear"
        print(
            f"{n_servers:>3} {n_queries:>10} {per_query * 1000:>10.2f} "
            f"{speedup:>8.1f}x {shape:>12}"
        )

    print(
        "\nThe speed-up exceeds the server count when the larger block "
        "(m * s) increases page sharing faster than the O(m^2) "
        "query-distance matrix grows -- Sec. 5.3 / Figure 11 of the paper."
    )


if __name__ == "__main__":
    main()
