"""Workload planning and incremental ranking.

Two capabilities layered on the paper's operator:

* the **query planner** automates Sec. 6.3's observation that the best
  access method flips from index to scan as the batch size grows;
* **incremental ranking** ([13]) delivers neighbours one at a time, for
  queries whose cut-off is not known upfront.

Run:  python examples/planner_and_ranking.py
"""

import itertools

from repro import knn_query, neighbors_within_factor
from repro.core.planner import QueryPlanner
from repro.core.ranking import neighbor_ranking
from repro.workloads import make_gaussian_mixture


def main() -> None:
    dataset = make_gaussian_mixture(
        n=12_000, dimension=10, n_clusters=25, cluster_std=0.03, seed=2
    )

    # --- planning: how should this workload be executed? --------------
    planner = QueryPlanner(dataset, probe_queries=8)
    print("== query planner ==")
    for n_queries in (1, 10, 500):
        plan = planner.plan(n_queries=n_queries, qtype=knn_query(10))
        print(f"\nworkload of {n_queries} k-NN queries:")
        print(plan.describe())

    # --- incremental ranking ------------------------------------------
    print("\n== incremental ranking ==")
    database = planner.database_for(
        planner.plan(n_queries=1, qtype=knn_query(10))
    )
    query = dataset[0]
    with database.measure() as run:
        first_five = list(itertools.islice(neighbor_ranking(database, query), 5))
    print("five nearest, lazily:", [(a.index, round(a.distance, 4)) for a in first_five])
    pages = run.counters.page_reads + run.counters.buffer_hits
    total = len(database.access_method.data_pages())
    print(f"pages touched: {pages} of {total} data pages")

    # Neighbours until the distance doubles relative to the nearest
    # non-identical object -- no k, no radius known upfront.
    probe = dataset[1] + 0.001  # slightly off a member: nearest distance > 0
    cohort = neighbors_within_factor(database, probe, factor=2.0)
    print(f"neighbours within 2x of the nearest: {len(cohort)}")


if __name__ == "__main__":
    main()
